package codec

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// TestXorIntoMatchesReference cross-checks the word-wide kernel against the
// byte-at-a-time reference across sizes that exercise the 64-byte blocks,
// the 8-byte tail, and the byte tail.
func TestXorIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 127, 128, 1000, 4096} {
		dst := make([]byte, n)
		src := make([]byte, n)
		for i := range dst {
			dst[i] = byte(rng.IntN(256))
			src[i] = byte(rng.IntN(256))
		}
		want := append([]byte(nil), dst...)
		xorIntoRef(want, src)
		xorInto(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("xorInto mismatch at n=%d", n)
		}
	}
}

// TestEncoderMatchesEncode proves the arena encoder is bit-identical to the
// allocating Encode across payload sizes including zero, partial-final-block,
// and full-capacity stripes.
func TestEncoderMatchesEncode(t *testing.T) {
	g := testGraph(t)
	c, err := New(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	enc := c.NewEncoder()
	rng := rand.New(rand.NewPCG(1, 9))
	for _, n := range []int{0, 1, 63, 64, 65, c.Capacity() / 2, c.Capacity() - 1, c.Capacity()} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		want, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("n=%d block %d differs between Encoder and Encode", n, i)
			}
		}
	}
	if _, err := enc.Encode(make([]byte, c.Capacity()+1)); err == nil {
		t.Fatal("Encoder accepted an oversized payload")
	}
}

// TestEncoderReuseDoesNotLeakPriorStripe guards the arena refill: a short
// payload after a long one must see zero padding, not the prior stripe's
// bytes.
func TestEncoderReuseDoesNotLeakPriorStripe(t *testing.T) {
	g := testGraph(t)
	c, err := New(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	enc := c.NewEncoder()
	long := bytes.Repeat([]byte{0xAA}, c.Capacity())
	if _, err := enc.Encode(long); err != nil {
		t.Fatal(err)
	}
	short := []byte{1, 2, 3}
	got, err := enc.Encode(short)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Encode(short)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("block %d differs after reuse: prior stripe leaked into padding", i)
		}
	}
}

// TestRepairWithMatchesRepair erases random subsets and checks the
// workspace repair agrees with the allocating Repair, including the
// unrecoverable verdict.
func TestRepairWithMatchesRepair(t *testing.T) {
	g := testGraph(t)
	c, err := New(g, 48)
	if err != nil {
		t.Fatal(err)
	}
	ws := c.NewWorkspace()
	rng := rand.New(rand.NewPCG(3, 3))
	payload := make([]byte, c.Capacity())
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	full, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		k := rng.IntN(8)
		a := make([][]byte, len(full))
		b := make([][]byte, len(full))
		for i := range full {
			a[i] = append([]byte(nil), full[i]...)
			b[i] = append([]byte(nil), full[i]...)
		}
		for j := 0; j < k; j++ {
			v := rng.IntN(len(full))
			a[v], b[v] = nil, nil
		}
		errA := c.Repair(a)
		errB := c.RepairWith(ws, b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: Repair err %v, RepairWith err %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		for i := range a {
			if (a[i] == nil) != (b[i] == nil) {
				t.Fatalf("trial %d: block %d presence differs", trial, i)
			}
			if a[i] != nil && !bytes.Equal(a[i], b[i]) {
				t.Fatalf("trial %d: block %d bytes differ", trial, i)
			}
		}
	}
}

// TestDecodeIntoRoundTrip streams several stripes through one workspace and
// one payload buffer, checking each decode against the source bytes.
func TestDecodeIntoRoundTrip(t *testing.T) {
	g := testGraph(t)
	c, err := New(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	ws := c.NewWorkspace()
	rng := rand.New(rand.NewPCG(5, 5))
	var buf []byte
	for stripe := 0; stripe < 10; stripe++ {
		n := 1 + rng.IntN(c.Capacity())
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		blocks, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Knock out a few blocks so the decode actually repairs.
		for j := 0; j < 3; j++ {
			blocks[rng.IntN(len(blocks))] = nil
		}
		buf = buf[:0]
		buf, err = c.DecodeInto(ws, buf, blocks, n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("stripe %d: DecodeInto mismatch", stripe)
		}
	}
}

// TestEncoderZeroAllocs is the allocation-regression gate on the encode hot
// loop: a warmed Encoder must not allocate per stripe.
func TestEncoderZeroAllocs(t *testing.T) {
	g := testGraph(t)
	c, err := New(g, 4096)
	if err != nil {
		t.Fatal(err)
	}
	enc := c.NewEncoder()
	payload := make([]byte, c.Capacity())
	if _, err := enc.Encode(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := enc.Encode(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Encoder.Encode allocates %.1f/op; the encode hot loop must be allocation-free", allocs)
	}
}
