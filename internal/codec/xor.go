package codec

import "encoding/binary"

// xorInto sets dst ^= src for equal-length slices.
//
// The hot loop works 64 bytes (eight 64-bit words) per iteration:
// binary.LittleEndian.Uint64/PutUint64 compile to single unaligned
// load/store instructions on little-endian targets, so each line is one
// load-xor-store of a machine word, and the 8-way unroll keeps the loop
// overhead off the critical path. This is the encoder's inner kernel —
// every parity byte the archive writes and every block it reconstructs
// flows through here — so it must not allocate and should run at memory
// bandwidth.
func xorInto(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+64 <= n; i += 64 {
		d := dst[i : i+64 : i+64]
		s := src[i : i+64 : i+64]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
		binary.LittleEndian.PutUint64(d[32:40], binary.LittleEndian.Uint64(d[32:40])^binary.LittleEndian.Uint64(s[32:40]))
		binary.LittleEndian.PutUint64(d[40:48], binary.LittleEndian.Uint64(d[40:48])^binary.LittleEndian.Uint64(s[40:48]))
		binary.LittleEndian.PutUint64(d[48:56], binary.LittleEndian.Uint64(d[48:56])^binary.LittleEndian.Uint64(s[48:56]))
		binary.LittleEndian.PutUint64(d[56:64], binary.LittleEndian.Uint64(d[56:64])^binary.LittleEndian.Uint64(s[56:64]))
	}
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^binary.LittleEndian.Uint64(s))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// xorIntoRef is the byte-at-a-time reference the tests cross-check the
// word kernel against.
func xorIntoRef(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
