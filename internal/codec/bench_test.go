package codec

import (
	"math/rand/v2"
	"testing"
)

// BenchmarkXorInto measures the word-wide XOR kernel at the default block
// size — the innermost loop of every encode and repair.
func BenchmarkXorInto(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xorInto(dst, src)
	}
}

// BenchmarkXorIntoRef is the byte-loop baseline BenchmarkXorInto is
// measured against.
func BenchmarkXorIntoRef(b *testing.B) {
	dst := make([]byte, 4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xorIntoRef(dst, src)
	}
}

// BenchmarkEncode is the allocating per-stripe encode the streaming path
// replaced: fresh blocks every stripe.
func BenchmarkEncode(b *testing.B) {
	g := testGraph(b)
	c, err := New(g, 4096)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncoderEncode is the arena encoder on the same stripe — the
// steady-state encode hot loop; allocs/op must be zero.
func BenchmarkEncoderEncode(b *testing.B) {
	g := testGraph(b)
	c, err := New(g, 4096)
	if err != nil {
		b.Fatal(err)
	}
	enc := c.NewEncoder()
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}
