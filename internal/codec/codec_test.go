package codec

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(12, 34)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(g, 0); err == nil {
		t.Error("block size 0 accepted")
	}
	c, err := New(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockSize() != 64 || c.Capacity() != 48*64 || c.Graph() != g {
		t.Error("accessors wrong")
	}
}

func TestEncodeDecodeRoundTripNoLoss(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 32)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 96 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	got, err := c.Decode(blocks, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("round trip mismatch")
	}
}

func TestEncodeTooLarge(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 4)
	if _, err := c.Encode(make([]byte, 48*4+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestDecodeAfterErasures(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 16)
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Erase 4 nodes — a screened+tested graph tolerates small losses; use
	// the structural decoder to pick a recoverable pattern.
	d := decode.New(g)
	erased := []int{0, 7, 50, 90}
	if !d.Recoverable(erased) {
		t.Skip("pattern unrecoverable for this draw")
	}
	for _, v := range erased {
		blocks[v] = nil
	}
	got, err := c.Decode(blocks, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("decoded payload differs")
	}
	// Repaired blocks must match a fresh encode.
	fresh, _ := c.Encode(payload)
	for _, v := range erased {
		if !bytes.Equal(blocks[v], fresh[v]) {
			t.Errorf("repaired block %d differs from original", v)
		}
	}
}

func TestDecodeUnrecoverable(t *testing.T) {
	// A mirrored graph loses data when a pair dies.
	b := graph.NewBuilder(4)
	r := b.AddLevel(0, 4, 4)
	g := b.Graph()
	for i := 0; i < 4; i++ {
		g.SetNeighbors(r+i, []int{i})
	}
	c, _ := New(g, 8)
	blocks, err := c.Encode([]byte("12345678abcdefgh"))
	if err != nil {
		t.Fatal(err)
	}
	blocks[0] = nil
	blocks[4] = nil
	if _, err := c.Decode(blocks, 16); !errors.Is(err, ErrUnrecoverable) {
		t.Errorf("Decode = %v, want ErrUnrecoverable", err)
	}
}

func TestRepairValidation(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 8)
	if err := c.Repair(make([][]byte, 5)); err == nil {
		t.Error("wrong block count accepted")
	}
	blocks := make([][]byte, 96)
	blocks[0] = make([]byte, 7)
	if err := c.Repair(blocks); err == nil {
		t.Error("wrong block length accepted")
	}
}

func TestEncodeChecksValidation(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 8)
	if err := c.EncodeChecks(make([][]byte, 3)); err == nil {
		t.Error("wrong block count accepted")
	}
	blocks := make([][]byte, 96)
	for i := 0; i < 48; i++ {
		blocks[i] = make([]byte, 8)
	}
	blocks[3] = make([]byte, 5)
	if err := c.EncodeChecks(blocks); err == nil {
		t.Error("short data block accepted")
	}
}

func TestCheckBlocksAreXOR(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 4)
	payload := make([]byte, c.Capacity())
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for r := g.Data; r < g.Total; r++ {
		want := make([]byte, 4)
		for _, l := range g.LeftNeighbors(r) {
			for i := range want {
				want[i] ^= blocks[l][i]
			}
		}
		if !bytes.Equal(blocks[r], want) {
			t.Fatalf("check %d is not the XOR of its lefts", r)
		}
	}
}

func TestDecodePayloadLenBounds(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 4)
	blocks, _ := c.Encode([]byte("hi"))
	if _, err := c.Decode(blocks, -1); err == nil {
		t.Error("negative payload length accepted")
	}
	if _, err := c.Decode(blocks, c.Capacity()+1); err == nil {
		t.Error("oversized payload length accepted")
	}
}

// Property: whenever the structural decoder says an erasure pattern is
// recoverable, the codec reconstructs the exact payload; when it says
// unrecoverable, the codec returns ErrUnrecoverable.
func TestQuickCodecAgreesWithStructuralDecoder(t *testing.T) {
	g := testGraph(t)
	c, _ := New(g, 8)
	d := decode.New(g)
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		payload := make([]byte, c.Capacity())
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		blocks, err := c.Encode(payload)
		if err != nil {
			return false
		}
		k := int(kRaw) % 40
		perm := rng.Perm(g.Total)
		erased := perm[:k]
		for _, v := range erased {
			blocks[v] = nil
		}
		recoverable := d.Recoverable(erased)
		got, err := c.Decode(blocks, len(payload))
		if recoverable {
			return err == nil && bytes.Equal(got, payload)
		}
		return errors.Is(err, ErrUnrecoverable)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestXorInto(t *testing.T) {
	a := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	b := []byte{255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255}
	want := make([]byte, len(a))
	for i := range a {
		want[i] = a[i] ^ b[i]
	}
	xorInto(a, b)
	if !bytes.Equal(a, want) {
		t.Errorf("xorInto = %v, want %v", a, want)
	}
}

func BenchmarkEncode96x4KiB(b *testing.B) {
	g := testGraph(b)
	c, _ := New(g, 4096)
	payload := make([]byte, c.Capacity())
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepair5Lost(b *testing.B) {
	g := testGraph(b)
	c, _ := New(g, 4096)
	payload := make([]byte, c.Capacity())
	blocks, _ := c.Encode(payload)
	d := decode.New(g)
	if !d.Recoverable([]int{0, 1, 50, 60, 70}) {
		b.Skip("pattern unrecoverable for this draw")
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		work := make([][]byte, len(blocks))
		copy(work, blocks)
		for _, v := range []int{0, 1, 50, 60, 70} {
			work[v] = nil
		}
		b.StartTimer()
		if err := c.Repair(work); err != nil {
			b.Fatal(err)
		}
	}
}
