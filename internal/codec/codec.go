// Package codec carries real data through a Tornado graph: data blocks are
// XORed into check blocks exactly as the graph edges describe (paper §2),
// and lost blocks are reconstructed with the peeling rules operating on the
// actual bytes. The structural simulator (internal/decode) answers "is this
// erasure pattern recoverable?"; this package performs the recovery.
package codec

import (
	"errors"
	"fmt"

	"tornado/internal/graph"
)

// ErrUnrecoverable is returned when the surviving blocks cannot reconstruct
// every data block.
var ErrUnrecoverable = errors.New("codec: data blocks unrecoverable from surviving blocks")

// Codec encodes and decodes fixed-size blocks against a graph. It is
// stateless apart from the graph and safe for concurrent use.
type Codec struct {
	g         *graph.Graph
	blockSize int
}

// New returns a Codec for g with the given block size in bytes.
func New(g *graph.Graph, blockSize int) (*Codec, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("codec: block size %d must be positive", blockSize)
	}
	return &Codec{g: g, blockSize: blockSize}, nil
}

// Graph returns the codec's graph.
func (c *Codec) Graph() *graph.Graph { return c.g }

// BlockSize returns the codec's block size.
func (c *Codec) BlockSize() int { return c.blockSize }

// Capacity returns the maximum payload bytes one stripe can carry.
func (c *Codec) Capacity() int { return c.g.Data * c.blockSize }

// Encode splits payload into data blocks (zero-padding the final block) and
// derives every check block, returning all Total blocks. The payload must
// fit in Capacity bytes; callers stripe larger objects.
func (c *Codec) Encode(payload []byte) ([][]byte, error) {
	if len(payload) > c.Capacity() {
		return nil, fmt.Errorf("codec: payload %d bytes exceeds stripe capacity %d", len(payload), c.Capacity())
	}
	blocks := make([][]byte, c.g.Total)
	for i := 0; i < c.g.Data; i++ {
		b := make([]byte, c.blockSize)
		lo := i * c.blockSize
		if lo < len(payload) {
			copy(b, payload[lo:])
		}
		blocks[i] = b
	}
	if err := c.EncodeChecks(blocks); err != nil {
		return nil, err
	}
	return blocks, nil
}

// EncodeChecks fills blocks[Data:] with the XOR parity prescribed by the
// graph. blocks[0:Data] must already hold the data blocks. Levels are
// computed in order, so cascade stages see their left blocks ready.
func (c *Codec) EncodeChecks(blocks [][]byte) error {
	if len(blocks) != c.g.Total {
		return fmt.Errorf("codec: got %d blocks, graph has %d nodes", len(blocks), c.g.Total)
	}
	for i := 0; i < c.g.Data; i++ {
		if len(blocks[i]) != c.blockSize {
			return fmt.Errorf("codec: data block %d has %d bytes, want %d", i, len(blocks[i]), c.blockSize)
		}
	}
	for r := c.g.Data; r < c.g.Total; r++ {
		b := blocks[r]
		if len(b) != c.blockSize {
			b = make([]byte, c.blockSize)
		} else {
			clear(b)
		}
		for _, l := range c.g.LeftNeighbors(r) {
			xorInto(b, blocks[l])
		}
		blocks[r] = b
	}
	return nil
}

// Decode reconstructs the original payload of length payloadLen from a
// partial block set (nil entries are missing). The input slice is repaired
// in place: every recoverable block is filled in.
func (c *Codec) Decode(blocks [][]byte, payloadLen int) ([]byte, error) {
	if payloadLen < 0 || payloadLen > c.Capacity() {
		return nil, fmt.Errorf("codec: payload length %d out of range", payloadLen)
	}
	if err := c.Repair(blocks); err != nil {
		return nil, err
	}
	out := make([]byte, payloadLen)
	for i := 0; i < c.g.Data && i*c.blockSize < payloadLen; i++ {
		copy(out[i*c.blockSize:], blocks[i])
	}
	return out, nil
}

// Repair runs data-carrying peeling over blocks (nil entries are missing),
// reconstructing every block it can reach. It returns ErrUnrecoverable if
// any data block remains missing; check blocks may legitimately stay nil.
func (c *Codec) Repair(blocks [][]byte) error {
	if len(blocks) != c.g.Total {
		return fmt.Errorf("codec: got %d blocks, graph has %d nodes", len(blocks), c.g.Total)
	}
	for i, b := range blocks {
		if b != nil && len(b) != c.blockSize {
			return fmt.Errorf("codec: block %d has %d bytes, want %d", i, len(b), c.blockSize)
		}
	}
	scratch := make([]byte, c.blockSize)
	for changed := true; changed; {
		changed = false
		for r := c.g.Data; r < c.g.Total; r++ {
			lefts := c.g.LeftNeighbors(r)
			missing := -1
			nMissing := 0
			for _, l := range lefts {
				if blocks[l] == nil {
					nMissing++
					missing = int(l)
					if nMissing > 1 {
						break
					}
				}
			}
			switch {
			case blocks[r] != nil && nMissing == 1:
				// Recover the single missing left: XOR of the check and
				// the other lefts.
				copy(scratch, blocks[r])
				for _, l := range lefts {
					if int(l) != missing {
						xorInto(scratch, blocks[l])
					}
				}
				blocks[missing] = append([]byte(nil), scratch...)
				changed = true
			case blocks[r] == nil && nMissing == 0:
				// Recompute the check from its complete left set.
				b := make([]byte, c.blockSize)
				for _, l := range lefts {
					xorInto(b, blocks[l])
				}
				blocks[r] = b
				changed = true
			}
		}
	}
	for i := 0; i < c.g.Data; i++ {
		if blocks[i] == nil {
			return ErrUnrecoverable
		}
	}
	return nil
}
