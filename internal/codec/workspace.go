package codec

import "fmt"

// Encoder is a reusable encoding workspace: one flat arena holding all
// Total blocks of a stripe, carved once and reused for every subsequent
// stripe. The streaming data path (archive.PutStream) keeps one Encoder per
// worker so a multi-gigabyte ingest allocates its stripe buffers exactly
// once — the per-stripe encode is allocation-free (the CI bench gate
// enforces 0 allocs/op on this loop).
//
// An Encoder is NOT safe for concurrent use; each goroutine needs its own.
type Encoder struct {
	c      *Codec
	arena  []byte
	blocks [][]byte
}

// NewEncoder returns a reusable encoder for the codec.
func (c *Codec) NewEncoder() *Encoder {
	arena := make([]byte, c.g.Total*c.blockSize)
	blocks := make([][]byte, c.g.Total)
	for i := range blocks {
		blocks[i] = arena[i*c.blockSize : (i+1)*c.blockSize : (i+1)*c.blockSize]
	}
	return &Encoder{c: c, arena: arena, blocks: blocks}
}

// Encode splits payload into data blocks (zero-padding the final block),
// derives every check block, and returns all Total blocks. The returned
// slice and every block in it are owned by the Encoder and valid only
// until the next Encode call; callers that retain blocks must copy them
// (the archive's frame layer copies on write, so the data path never
// does).
func (e *Encoder) Encode(payload []byte) ([][]byte, error) {
	c := e.c
	if len(payload) > c.Capacity() {
		return nil, fmt.Errorf("codec: payload %d bytes exceeds stripe capacity %d", len(payload), c.Capacity())
	}
	// Refill the data region: payload bytes then zero padding.
	dataBytes := c.g.Data * c.blockSize
	n := copy(e.arena[:dataBytes], payload)
	clear(e.arena[n:dataBytes])
	for r := c.g.Data; r < c.g.Total; r++ {
		b := e.blocks[r]
		clear(b)
		for _, l := range c.g.LeftNeighbors(r) {
			xorInto(b, e.blocks[l])
		}
	}
	return e.blocks, nil
}

// Workspace is a reusable repair/decode workspace: the peeling scratch
// block plus an arena that recovered blocks are carved from, so repairing
// stripe after stripe of a streaming Get reuses the same memory instead of
// allocating per recovered block.
//
// A Workspace is NOT safe for concurrent use; each goroutine needs its own.
type Workspace struct {
	scratch []byte
	arena   []byte
	used    int
}

// NewWorkspace returns a repair workspace for the codec: scratch for one
// block and an arena sized for a full stripe's worth of recoveries.
func (c *Codec) NewWorkspace() *Workspace {
	return &Workspace{
		scratch: make([]byte, c.blockSize),
		arena:   make([]byte, c.g.Total*c.blockSize),
	}
}

// alloc carves one block from the arena, growing it if a pathological
// call pattern (wrong codec, repeated reuse without reset) exhausts it.
func (w *Workspace) alloc(blockSize int) []byte {
	if w.used+blockSize > len(w.arena) {
		w.arena = make([]byte, len(w.arena)+blockSize*8)
		w.used = 0
	}
	b := w.arena[w.used : w.used+blockSize : w.used+blockSize]
	w.used += blockSize
	return b
}

// reset recycles the arena for the next stripe. Blocks handed out earlier
// must no longer be referenced by the caller.
func (w *Workspace) reset() { w.used = 0 }

// RepairWith is Repair using ws for all scratch and recovered-block
// memory. Blocks filled into the input slice alias ws's arena and are
// valid only until the next RepairWith/DecodeInto call on the same
// workspace; the archive's write paths copy before the backend sees them.
func (c *Codec) RepairWith(ws *Workspace, blocks [][]byte) error {
	if len(blocks) != c.g.Total {
		return fmt.Errorf("codec: got %d blocks, graph has %d nodes", len(blocks), c.g.Total)
	}
	for i, b := range blocks {
		if b != nil && len(b) != c.blockSize {
			return fmt.Errorf("codec: block %d has %d bytes, want %d", i, len(b), c.blockSize)
		}
	}
	ws.reset()
	if len(ws.scratch) < c.blockSize {
		ws.scratch = make([]byte, c.blockSize)
	}
	scratch := ws.scratch[:c.blockSize]
	for changed := true; changed; {
		changed = false
		for r := c.g.Data; r < c.g.Total; r++ {
			lefts := c.g.LeftNeighbors(r)
			missing := -1
			nMissing := 0
			for _, l := range lefts {
				if blocks[l] == nil {
					nMissing++
					missing = int(l)
					if nMissing > 1 {
						break
					}
				}
			}
			switch {
			case blocks[r] != nil && nMissing == 1:
				copy(scratch, blocks[r])
				for _, l := range lefts {
					if int(l) != missing {
						xorInto(scratch, blocks[l])
					}
				}
				b := ws.alloc(c.blockSize)
				copy(b, scratch)
				blocks[missing] = b
				changed = true
			case blocks[r] == nil && nMissing == 0:
				b := ws.alloc(c.blockSize)
				clear(b)
				for _, l := range lefts {
					xorInto(b, blocks[l])
				}
				blocks[r] = b
				changed = true
			}
		}
	}
	for i := 0; i < c.g.Data; i++ {
		if blocks[i] == nil {
			return ErrUnrecoverable
		}
	}
	return nil
}

// DecodeInto reconstructs the stripe payload into dst (which must have
// payloadLen capacity available via append semantics: the payload is
// appended to dst and the extended slice returned), repairing blocks in
// place with ws. It is Decode for the streaming path: one payload buffer
// and one workspace serve every stripe of a Get.
func (c *Codec) DecodeInto(ws *Workspace, dst []byte, blocks [][]byte, payloadLen int) ([]byte, error) {
	if payloadLen < 0 || payloadLen > c.Capacity() {
		return nil, fmt.Errorf("codec: payload length %d out of range", payloadLen)
	}
	if err := c.RepairWith(ws, blocks); err != nil {
		return nil, err
	}
	for i := 0; i < c.g.Data && i*c.blockSize < payloadLen; i++ {
		end := min((i+1)*c.blockSize, payloadLen)
		dst = append(dst, blocks[i][:end-i*c.blockSize]...)
	}
	return dst, nil
}
