package graph

import (
	"strings"
	"testing"
)

// tiny builds the running example used throughout the package tests:
// 4 data nodes, level 1 with 2 checks over them, level 2 with 1 check over
// the level-1 checks.
//
//	data 0..3 → checks 4,5 → check 6
func tiny(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	r1 := b.AddLevel(0, 4, 2)
	r2 := b.AddLevel(r1, 2, 1)
	g := b.Graph()
	g.SetNeighbors(r1, []int{0, 1})
	g.SetNeighbors(r1+1, []int{2, 3})
	g.SetNeighbors(r2, []int{4, 5})
	if err := g.Validate(); err != nil {
		t.Fatalf("tiny graph invalid: %v", err)
	}
	return g
}

func TestBuilderLayout(t *testing.T) {
	g := tiny(t)
	if g.Data != 4 || g.Total != 7 || len(g.Levels) != 2 {
		t.Fatalf("layout: %+v", g.Summary())
	}
	if g.Levels[0].RightFirst != 4 || g.Levels[1].RightFirst != 6 {
		t.Errorf("right ranges: %+v", g.Levels)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(){
		"zero data":       func() { NewBuilder(0) },
		"zero left count": func() { NewBuilder(4).AddLevel(0, 0, 1) },
		"bad left range":  func() { NewBuilder(4).AddLevel(0, 5, 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClassification(t *testing.T) {
	g := tiny(t)
	if !g.IsData(0) || g.IsData(4) || g.IsData(-1) {
		t.Error("IsData wrong")
	}
	if !g.IsRight(4) || !g.IsRight(6) || g.IsRight(3) || g.IsRight(7) {
		t.Error("IsRight wrong")
	}
	if g.LevelOfRight(4) != 0 || g.LevelOfRight(6) != 1 || g.LevelOfRight(2) != -1 {
		t.Error("LevelOfRight wrong")
	}
}

func TestAdjacency(t *testing.T) {
	g := tiny(t)
	if ln := g.LeftNeighbors(4); len(ln) != 2 || ln[0] != 0 || ln[1] != 1 {
		t.Errorf("LeftNeighbors(4) = %v", ln)
	}
	if p := g.Parents(0); len(p) != 1 || p[0] != 4 {
		t.Errorf("Parents(0) = %v", p)
	}
	if p := g.Parents(4); len(p) != 1 || p[0] != 6 {
		t.Errorf("Parents(4) = %v", p)
	}
	if g.Degree(0) != 1 || g.RightDegree(6) != 2 {
		t.Error("degrees wrong")
	}
	if !g.HasEdge(4, 0) || g.HasEdge(4, 2) {
		t.Error("HasEdge wrong")
	}
	if g.EdgeCount() != 6 {
		t.Errorf("EdgeCount = %d, want 6", g.EdgeCount())
	}
}

func TestAddRemoveEdge(t *testing.T) {
	g := tiny(t)
	g.AddEdge(4, 2)
	if !g.HasEdge(4, 2) || g.Degree(2) != 2 {
		t.Error("AddEdge failed")
	}
	g.RemoveEdge(4, 2)
	if g.HasEdge(4, 2) || g.Degree(2) != 1 {
		t.Error("RemoveEdge failed")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid after add/remove: %v", err)
	}
}

func TestEdgePanics(t *testing.T) {
	g := tiny(t)
	cases := map[string]func(){
		"duplicate edge":       func() { g.AddEdge(4, 0) },
		"left outside level":   func() { g.AddEdge(6, 0) },
		"not a right node":     func() { g.AddEdge(2, 0) },
		"remove missing edge":  func() { g.RemoveEdge(4, 3) },
		"rewire across levels": func() { g.RewireEdge(0, 4, 6) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRewireEdge(t *testing.T) {
	g := tiny(t)
	g.RewireEdge(0, 4, 5) // move data 0 from check 4 to check 5
	if g.HasEdge(4, 0) || !g.HasEdge(5, 0) {
		t.Error("RewireEdge did not move edge")
	}
	if p := g.Parents(0); len(p) != 1 || p[0] != 5 {
		t.Errorf("Parents(0) after rewire = %v", p)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid after rewire: %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	g := tiny(t)
	c := g.Clone()
	c.AddEdge(4, 2)
	if g.HasEdge(4, 2) {
		t.Error("mutating clone changed original")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestValidateCatchesUncoveredData(t *testing.T) {
	b := NewBuilder(4)
	r1 := b.AddLevel(0, 4, 2)
	g := b.Graph()
	g.SetNeighbors(r1, []int{0, 1})
	g.SetNeighbors(r1+1, []int{1, 2}) // data node 3 uncovered
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no parity coverage") {
		t.Errorf("Validate = %v, want coverage error", err)
	}
}

func TestValidateCatchesEmptyRight(t *testing.T) {
	b := NewBuilder(2)
	b.AddLevel(0, 2, 1)
	g := b.Graph()
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "no left neighbors") {
		t.Errorf("Validate = %v, want empty-right error", err)
	}
}

func TestSetNeighborsReplaces(t *testing.T) {
	g := tiny(t)
	g.SetNeighbors(4, []int{2, 3})
	if g.HasEdge(4, 0) || !g.HasEdge(4, 2) {
		t.Error("SetNeighbors did not replace list")
	}
	// Old parents must be cleaned up.
	if len(g.Parents(0)) != 0 {
		t.Errorf("stale parent on node 0: %v", g.Parents(0))
	}
}

func TestSummaryAndString(t *testing.T) {
	g := tiny(t)
	g.Name = "tiny"
	s := g.Summary()
	if s.Data != 4 || s.Total != 7 || s.Levels != 2 || s.Edges != 6 {
		t.Errorf("Summary = %+v", s)
	}
	if s.MinDataDegree != 1 || s.MaxDataDegree != 1 {
		t.Errorf("data degrees = %d..%d", s.MinDataDegree, s.MaxDataDegree)
	}
	if want := 1.0; s.AvgDataDegree != want {
		t.Errorf("AvgDataDegree = %v", s.AvgDataDegree)
	}
	if str := g.String(); !strings.Contains(str, "tiny") {
		t.Errorf("String = %q", str)
	}
}

func TestSharedLeftRangeLevels(t *testing.T) {
	// Typhoon final-stage arrangement: two levels sharing the same left
	// range (paper §3.1).
	b := NewBuilder(8)
	r1 := b.AddLevel(0, 8, 4)
	rA := b.AddLevel(r1, 4, 2)
	rB := b.AddLevel(r1, 4, 2) // same left range as previous level
	g := b.Graph()
	for i := 0; i < 4; i++ {
		g.SetNeighbors(r1+i, []int{2 * i, 2*i + 1})
	}
	g.SetNeighbors(rA, []int{r1, r1 + 1})
	g.SetNeighbors(rA+1, []int{r1 + 2, r1 + 3})
	g.SetNeighbors(rB, []int{r1, r1 + 2})
	g.SetNeighbors(rB+1, []int{r1 + 1, r1 + 3})
	if err := g.Validate(); err != nil {
		t.Fatalf("shared-left graph invalid: %v", err)
	}
	// Each level-1 check is now protected by two final-stage checks.
	for i := 0; i < 4; i++ {
		if got := g.Degree(r1 + i); got != 2 {
			t.Errorf("check %d degree = %d, want 2", r1+i, got)
		}
	}
}

func BenchmarkRewireEdge(b *testing.B) {
	bld := NewBuilder(4)
	r1 := bld.AddLevel(0, 4, 2)
	g := bld.Graph()
	g.SetNeighbors(r1, []int{0, 1})
	g.SetNeighbors(r1+1, []int{2, 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RewireEdge(0, r1, r1+1)
		g.RewireEdge(0, r1+1, r1)
	}
}
