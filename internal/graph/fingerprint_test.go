package graph

import "testing"

func TestFingerprintCloneInvariant(t *testing.T) {
	g := tiny(t)
	fp := g.Fingerprint()
	if len(fp) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(fp))
	}
	if got := g.Clone().Fingerprint(); got != fp {
		t.Errorf("clone fingerprint differs: %s vs %s", got, fp)
	}
	// The name is presentation, not structure.
	named := g.Clone()
	named.Name = "renamed"
	if got := named.Fingerprint(); got != fp {
		t.Errorf("rename changed fingerprint")
	}
	// Repeated calls are stable.
	if got := g.Fingerprint(); got != fp {
		t.Errorf("fingerprint not deterministic")
	}
}

func TestFingerprintEdgeOrderInvariant(t *testing.T) {
	// Same edges inserted in different orders must fingerprint identically.
	build := func(order []int) *Graph {
		b := NewBuilder(4)
		r1 := b.AddLevel(0, 4, 1)
		g := b.Graph()
		for _, l := range order {
			g.AddEdge(r1, l)
		}
		return g
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("edge insertion order changed fingerprint")
	}
}

func TestFingerprintRewireSensitive(t *testing.T) {
	g := tiny(t)
	fp := g.Fingerprint()

	rewired := g.Clone()
	// Move data node 1 from check 4 to check 5 — the adjustment primitive.
	rewired.RewireEdge(1, 4, 5)
	if rewired.Fingerprint() == fp {
		t.Errorf("rewire did not change fingerprint")
	}
	// Rewiring back restores the original structure and hash.
	rewired.RewireEdge(1, 5, 4)
	if rewired.Fingerprint() != fp {
		t.Errorf("inverse rewire did not restore fingerprint")
	}

	added := g.Clone()
	added.AddEdge(4, 2)
	if added.Fingerprint() == fp {
		t.Errorf("added edge did not change fingerprint")
	}
}

func TestFingerprintLevelGeometrySensitive(t *testing.T) {
	// Identical edge sets under different level geometry must differ: one
	// level of two checks vs two levels of one check each over the same
	// left range.
	one := func() *Graph {
		b := NewBuilder(2)
		r := b.AddLevel(0, 2, 2)
		g := b.Graph()
		g.SetNeighbors(r, []int{0})
		g.SetNeighbors(r+1, []int{1})
		return g
	}()
	two := func() *Graph {
		b := NewBuilder(2)
		r1 := b.AddLevel(0, 2, 1)
		r2 := b.AddLevel(0, 2, 1)
		g := b.Graph()
		g.SetNeighbors(r1, []int{0})
		g.SetNeighbors(r2, []int{1})
		return g
	}()
	if one.Fingerprint() == two.Fingerprint() {
		t.Errorf("different level geometry produced equal fingerprints")
	}
}
