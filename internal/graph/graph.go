// Package graph models the cascaded bipartite low density parity check
// (LDPC) graphs at the heart of a Tornado Code (paper §2, Figures 1–2).
//
// A graph holds Data data nodes (global IDs 0..Data-1) followed by one or
// more check levels. Each level connects a contiguous range of left nodes to
// a contiguous range of newly allocated right (check) nodes; the left nodes
// of level i+1 are the right nodes of level i. The Typhoon treatment of the
// final stages (paper §3.1) is expressed naturally: two consecutive levels
// may share the same left range.
//
// Every right node stores the list of left nodes XORed to produce it. The
// reverse index (Parents) — the right nodes that reference a given node —
// is maintained for the peeling decoder.
package graph

import (
	"fmt"
	"slices"
)

// Level describes one cascade stage: right nodes [RightFirst,
// RightFirst+RightCount) are parity over subsets of left nodes [LeftFirst,
// LeftFirst+LeftCount).
type Level struct {
	LeftFirst  int
	LeftCount  int
	RightFirst int
	RightCount int
}

// Graph is a cascaded bipartite LDPC graph. Construct with NewBuilder or by
// deserializing GraphML; mutate edges only through the Add/Remove/Rewire
// methods so the reverse index stays consistent.
type Graph struct {
	Name   string
	Data   int // number of data nodes; IDs 0..Data-1
	Total  int // total node count (data + all check nodes)
	Levels []Level

	lefts   [][]int32 // lefts[r]: left neighbors of right node r (nil for non-right nodes)
	parents [][]int32 // parents[v]: right nodes that include v as a left neighbor
}

// Builder incrementally assembles a Graph level by level.
type Builder struct {
	g *Graph
}

// NewBuilder starts a graph with data data nodes and no check levels.
func NewBuilder(data int) *Builder {
	if data <= 0 {
		panic("graph: data node count must be positive")
	}
	return &Builder{g: &Graph{Data: data, Total: data}}
}

// AddLevel appends a check level whose left nodes are the range
// [leftFirst, leftFirst+leftCount) and allocates rightCount fresh right
// nodes, returning the ID of the first. The left range must reference
// already-existing nodes.
func (b *Builder) AddLevel(leftFirst, leftCount, rightCount int) int {
	g := b.g
	if leftCount <= 0 || rightCount <= 0 {
		panic("graph: level node counts must be positive")
	}
	if leftFirst < 0 || leftFirst+leftCount > g.Total {
		panic(fmt.Sprintf("graph: left range [%d,%d) references unknown nodes (total %d)",
			leftFirst, leftFirst+leftCount, g.Total))
	}
	rightFirst := g.Total
	g.Levels = append(g.Levels, Level{
		LeftFirst: leftFirst, LeftCount: leftCount,
		RightFirst: rightFirst, RightCount: rightCount,
	})
	g.Total += rightCount
	return rightFirst
}

// Graph finalizes the builder, allocating adjacency storage. Edges are then
// added with SetNeighbors / AddEdge.
func (b *Builder) Graph() *Graph {
	g := b.g
	g.lefts = make([][]int32, g.Total)
	g.parents = make([][]int32, g.Total)
	return g
}

// IsData reports whether node v is a data node.
func (g *Graph) IsData(v int) bool { return v >= 0 && v < g.Data }

// IsRight reports whether node v is a right (check) node of some level.
func (g *Graph) IsRight(v int) bool { return v >= g.Data && v < g.Total }

// LevelOfRight returns the index of the level whose right range contains v,
// or -1 if v is not a right node.
func (g *Graph) LevelOfRight(v int) int {
	for i, l := range g.Levels {
		if v >= l.RightFirst && v < l.RightFirst+l.RightCount {
			return i
		}
	}
	return -1
}

// LeftNeighbors returns the left-neighbor list of right node r. The caller
// must not mutate the returned slice.
func (g *Graph) LeftNeighbors(r int) []int32 { return g.lefts[r] }

// Parents returns the right nodes that include v as a left neighbor. The
// caller must not mutate the returned slice.
func (g *Graph) Parents(v int) []int32 { return g.parents[v] }

// Degree returns the number of right nodes referencing v (v's left degree).
func (g *Graph) Degree(v int) int { return len(g.parents[v]) }

// RightDegree returns the number of left neighbors of right node r.
func (g *Graph) RightDegree(r int) int { return len(g.lefts[r]) }

// HasEdge reports whether right node r references left node l.
func (g *Graph) HasEdge(r, l int) bool {
	return slices.Contains(g.lefts[r], int32(l))
}

// SetNeighbors replaces the left-neighbor list of right node r. Neighbors
// must be distinct and inside r's level's left range.
func (g *Graph) SetNeighbors(r int, lefts []int) {
	for _, l := range g.lefts[r] {
		g.removeParent(int(l), r)
	}
	g.lefts[r] = g.lefts[r][:0]
	for _, l := range lefts {
		g.AddEdge(r, l)
	}
}

// AddEdge connects right node r to left node l. It panics if the edge
// already exists or violates the level structure.
func (g *Graph) AddEdge(r, l int) {
	li := g.LevelOfRight(r)
	if li < 0 {
		panic(fmt.Sprintf("graph: AddEdge: %d is not a right node", r))
	}
	lv := g.Levels[li]
	if l < lv.LeftFirst || l >= lv.LeftFirst+lv.LeftCount {
		panic(fmt.Sprintf("graph: AddEdge: left node %d outside level %d left range [%d,%d)",
			l, li, lv.LeftFirst, lv.LeftFirst+lv.LeftCount))
	}
	if g.HasEdge(r, l) {
		panic(fmt.Sprintf("graph: AddEdge: duplicate edge (%d,%d)", r, l))
	}
	g.lefts[r] = append(g.lefts[r], int32(l))
	g.parents[l] = append(g.parents[l], int32(r))
}

// RemoveEdge disconnects right node r from left node l. It panics if the
// edge does not exist.
func (g *Graph) RemoveEdge(r, l int) {
	i := slices.Index(g.lefts[r], int32(l))
	if i < 0 {
		panic(fmt.Sprintf("graph: RemoveEdge: no edge (%d,%d)", r, l))
	}
	g.lefts[r] = slices.Delete(g.lefts[r], i, i+1)
	g.removeParent(l, r)
}

func (g *Graph) removeParent(l, r int) {
	i := slices.Index(g.parents[l], int32(r))
	if i < 0 {
		panic(fmt.Sprintf("graph: reverse index corrupt: parents[%d] missing %d", l, r))
	}
	g.parents[l] = slices.Delete(g.parents[l], i, i+1)
}

// RewireEdge moves left node l's membership from right node oldR to right
// node newR (both in the same level). This is the primitive used by the
// feedback-based graph adjustment procedure (paper §3.3).
func (g *Graph) RewireEdge(l, oldR, newR int) {
	if g.LevelOfRight(oldR) != g.LevelOfRight(newR) {
		panic(fmt.Sprintf("graph: RewireEdge across levels (%d→%d)", oldR, newR))
	}
	g.RemoveEdge(oldR, l)
	g.AddEdge(newR, l)
}

// EdgeCount returns the total number of edges across all levels.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, ls := range g.lefts {
		n += len(ls)
	}
	return n
}

// AvgDataDegree returns the average number of check nodes referencing each
// data node (the paper reports ≈3.6 for its Tornado graphs).
func (g *Graph) AvgDataDegree() float64 {
	if g.Data == 0 {
		return 0
	}
	n := 0
	for v := 0; v < g.Data; v++ {
		n += len(g.parents[v])
	}
	return float64(n) / float64(g.Data)
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:    g.Name,
		Data:    g.Data,
		Total:   g.Total,
		Levels:  slices.Clone(g.Levels),
		lefts:   make([][]int32, g.Total),
		parents: make([][]int32, g.Total),
	}
	for i := range g.lefts {
		c.lefts[i] = slices.Clone(g.lefts[i])
		c.parents[i] = slices.Clone(g.parents[i])
	}
	return c
}

// Validate checks structural invariants: level ranges tile the node space,
// every edge respects its level's left range, no duplicate edges, the
// reverse index matches the forward adjacency, every right node has at
// least one left neighbor, and every data node is covered by at least one
// check.
func (g *Graph) Validate() error {
	if g.Data <= 0 || g.Total < g.Data {
		return fmt.Errorf("graph: invalid node counts data=%d total=%d", g.Data, g.Total)
	}
	next := g.Data
	for i, lv := range g.Levels {
		if lv.RightFirst != next {
			return fmt.Errorf("graph: level %d right range starts at %d, want %d", i, lv.RightFirst, next)
		}
		if lv.LeftFirst < 0 || lv.LeftFirst+lv.LeftCount > lv.RightFirst {
			return fmt.Errorf("graph: level %d left range [%d,%d) overlaps its right range",
				i, lv.LeftFirst, lv.LeftFirst+lv.LeftCount)
		}
		next += lv.RightCount
	}
	if next != g.Total {
		return fmt.Errorf("graph: levels cover %d nodes, total is %d", next, g.Total)
	}
	for r := g.Data; r < g.Total; r++ {
		li := g.LevelOfRight(r)
		lv := g.Levels[li]
		if len(g.lefts[r]) == 0 {
			return fmt.Errorf("graph: right node %d has no left neighbors", r)
		}
		seen := map[int32]bool{}
		for _, l := range g.lefts[r] {
			if int(l) < lv.LeftFirst || int(l) >= lv.LeftFirst+lv.LeftCount {
				return fmt.Errorf("graph: edge (%d,%d) outside level %d left range", r, l, li)
			}
			if seen[l] {
				return fmt.Errorf("graph: duplicate edge (%d,%d)", r, l)
			}
			seen[l] = true
			if !slices.Contains(g.parents[l], int32(r)) {
				return fmt.Errorf("graph: reverse index missing (%d,%d)", r, l)
			}
		}
	}
	for v := 0; v < g.Total; v++ {
		for _, r := range g.parents[v] {
			if !slices.Contains(g.lefts[r], int32(v)) {
				return fmt.Errorf("graph: reverse index has phantom edge (%d,%d)", r, v)
			}
		}
	}
	for v := 0; v < g.Data; v++ {
		if len(g.parents[v]) == 0 {
			return fmt.Errorf("graph: data node %d has no parity coverage", v)
		}
	}
	return nil
}

// Stats summarizes a graph for reports.
type Stats struct {
	Name          string
	Data          int
	Total         int
	Levels        int
	Edges         int
	AvgDataDegree float64
	MinDataDegree int
	MaxDataDegree int
}

// Summary computes a Stats snapshot.
func (g *Graph) Summary() Stats {
	s := Stats{
		Name:          g.Name,
		Data:          g.Data,
		Total:         g.Total,
		Levels:        len(g.Levels),
		Edges:         g.EdgeCount(),
		AvgDataDegree: g.AvgDataDegree(),
	}
	if g.Data > 0 {
		s.MinDataDegree = len(g.parents[0])
		for v := 0; v < g.Data; v++ {
			d := len(g.parents[v])
			if d < s.MinDataDegree {
				s.MinDataDegree = d
			}
			if d > s.MaxDataDegree {
				s.MaxDataDegree = d
			}
		}
	}
	return s
}

// String renders a short description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: %d data + %d check nodes, %d levels, %d edges, avg data degree %.2f",
		g.Name, g.Data, g.Total-g.Data, len(g.Levels), g.EdgeCount(), g.AvgDataDegree())
}
