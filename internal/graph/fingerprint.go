package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"slices"
)

// Fingerprint returns a stable, canonical content hash of the graph: a
// sha256 over the data node count, the level geometry, and every right
// node's sorted left-neighbor list. Two graphs share a fingerprint exactly
// when they encode the same erasure structure — the Name and the in-memory
// edge insertion order are excluded, so a Clone (or a GraphML round trip)
// fingerprints identically while any Add/Remove/RewireEdge changes it.
//
// The fingerprint is the cache key of the campaign result cache: an
// unchanged graph re-submitted to a campaign is served from cache, while an
// adjust.Improve-style rewire invalidates it.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	word := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	word(int64(g.Data))
	word(int64(len(g.Levels)))
	for _, lv := range g.Levels {
		word(int64(lv.LeftFirst))
		word(int64(lv.LeftCount))
		word(int64(lv.RightFirst))
		word(int64(lv.RightCount))
	}
	// Right nodes occupy [Data, Total) in a fixed order; hashing each
	// sorted neighbor list canonicalizes edge insertion order.
	sorted := make([]int32, 0, 64)
	for r := g.Data; r < g.Total; r++ {
		ls := g.lefts[r]
		sorted = append(sorted[:0], ls...)
		slices.Sort(sorted)
		word(int64(len(sorted)))
		for _, l := range sorted {
			word(int64(l))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
