package decode

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"tornado/internal/graph"
)

// mirror builds a 2n-node mirrored system as a graph: n data nodes, n
// degree-1 checks, check n+i mirroring data i. This is the validation graph
// from paper §3 (Equation 1).
func mirror(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	r := b.AddLevel(0, n, n)
	g := b.Graph()
	for i := 0; i < n; i++ {
		g.SetNeighbors(r+i, []int{i})
	}
	return g
}

// cascade builds a small three-stage cascade:
//
//	data 0..3 → checks 4,5 (each over 2 data) → check 6 (over 4,5)
func cascade(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	r1 := b.AddLevel(0, 4, 2)
	r2 := b.AddLevel(r1, 2, 1)
	g := b.Graph()
	g.SetNeighbors(r1, []int{0, 1})
	g.SetNeighbors(r1+1, []int{2, 3})
	g.SetNeighbors(r2, []int{4, 5})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// defective builds the paper §3.2 defect: two left nodes sharing exactly the
// same two right nodes ("17 [48,57] / 22 [48,57]"), scaled down. Losing both
// lefts is unrecoverable even with everything else present.
func defective(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	r1 := b.AddLevel(0, 4, 3)
	g := b.Graph()
	g.SetNeighbors(r1, []int{0, 1})   // shared check A
	g.SetNeighbors(r1+1, []int{0, 1}) // shared check B — the defect
	g.SetNeighbors(r1+2, []int{2, 3})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMirrorSingleLoss(t *testing.T) {
	g := mirror(4)
	d := New(g)
	for v := 0; v < g.Total; v++ {
		if !d.Recoverable([]int{v}) {
			t.Errorf("single loss of node %d should be recoverable", v)
		}
	}
}

func TestMirrorPairLoss(t *testing.T) {
	g := mirror(4)
	d := New(g)
	if d.Recoverable([]int{0, 4}) {
		t.Error("losing a data node and its mirror must lose data")
	}
	if !d.Recoverable([]int{0, 5}) {
		t.Error("losing a data node and an unrelated mirror must be fine")
	}
	if !d.Recoverable([]int{4, 5, 6, 7}) {
		t.Error("losing only mirrors never loses data")
	}
	if d.Recoverable([]int{0, 1, 4, 5}) {
		t.Error("two dead pairs must fail")
	}
}

func TestCascadeRecoversCheckFromBelow(t *testing.T) {
	g := cascade(t)
	d := New(g)
	// Lose data 0 and its only check 4. Check 4 is recomputable? No — it
	// needs data 0. But check 6 is present with left {4,5}; 5 present, so 4
	// is recovered from below, then 4 recovers data 0.
	if !d.Recoverable([]int{0, 4}) {
		t.Error("cascade should recover check 4 from level 2, then data 0")
	}
	// Erasing 0, 4, and 6 removes the recovery path.
	if d.Recoverable([]int{0, 4, 6}) {
		t.Error("erasing the whole recovery chain must fail")
	}
	// Erasing 0, 4, 5: check 6 has two missing lefts, can't help; 5 can be
	// recomputed from data 2,3, then 6 recovers 4, then 4 recovers 0.
	if !d.Recoverable([]int{0, 4, 5}) {
		t.Error("check 5 recomputation should unlock the chain")
	}
	// Two data under one check: unrecoverable only if the check's help is
	// exhausted: erase 0,1 → check 4 has two missing, no other coverage.
	if d.Recoverable([]int{0, 1}) {
		t.Error("two data nodes under a single degree-2 check must fail")
	}
}

func TestDefectiveClosedSet(t *testing.T) {
	g := defective(t)
	d := New(g)
	if d.Recoverable([]int{0, 1}) {
		t.Error("paper §3.2 closed-set defect: losing both lefts must fail")
	}
	if !d.Recoverable([]int{0}) || !d.Recoverable([]int{1}) {
		t.Error("single losses must be recoverable")
	}
	res := d.Decode([]int{0, 1})
	if res.OK {
		t.Fatal("Decode should fail")
	}
	if len(res.UnrecoveredData) != 2 || res.UnrecoveredData[0] != 0 || res.UnrecoveredData[1] != 1 {
		t.Errorf("UnrecoveredData = %v, want [0 1]", res.UnrecoveredData)
	}
}

func TestEraseDuplicatesAndResetIndependence(t *testing.T) {
	g := cascade(t)
	d := New(g)
	d.Erase(0, 0, 4, 4)
	d.Peel()
	if !d.AllDataPresent() {
		t.Error("duplicate erasures should behave like single erasures")
	}
	d.Reset()
	// After reset the decoder must be back at baseline: same query again.
	if !d.Recoverable([]int{0, 4}) {
		t.Error("decoder state leaked across Reset")
	}
	if d.Recoverable([]int{0, 1}) {
		t.Error("fail case after reset")
	}
	if !d.Recoverable([]int{2, 5}) {
		t.Error("recoverable case after a failing case")
	}
}

func TestSupplyUnlocksDecode(t *testing.T) {
	g := defective(t)
	d := New(g)
	d.Erase(0, 1)
	d.Peel()
	if d.AllDataPresent() {
		t.Fatal("should be stuck")
	}
	// Federation exchange: a replica supplies block 0; peeling then
	// recovers block 1 through the shared check.
	d.Supply(0)
	d.Peel()
	if !d.AllDataPresent() {
		t.Error("supplying one critical block should unlock the rest")
	}
	d.Reset()
}

func TestSupplyPresentNodeNoOp(t *testing.T) {
	g := cascade(t)
	d := New(g)
	d.Supply(0) // already present
	if !d.Recoverable([]int{0, 4, 5}) {
		t.Error("no-op Supply corrupted state")
	}
}

func TestMissingNodesReporting(t *testing.T) {
	g := defective(t)
	d := New(g)
	d.Erase(1, 0) // unordered on purpose
	d.Peel()
	if got := d.MissingData(nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("MissingData = %v", got)
	}
	all := d.MissingNodes(nil)
	if len(all) != 2 {
		t.Errorf("MissingNodes = %v", all)
	}
	d.Reset()
	d.Erase(0)
	d.Peel()
	if got := d.MissingData(nil); len(got) != 0 {
		t.Errorf("MissingData after recovery = %v", got)
	}
	d.Reset()
}

func TestEraseSupplyEraseAgain(t *testing.T) {
	g := mirror(2)
	d := New(g)
	d.Erase(0)
	d.Supply(0)
	d.Erase(0)
	d.Erase(2) // 0's mirror
	d.Peel()
	if d.AllDataPresent() {
		t.Error("re-erased node with dead mirror should fail")
	}
	d.Reset()
	if !d.Recoverable(nil) {
		t.Error("baseline broken after erase/supply/erase cycle")
	}
}

// randomCascade builds a random multi-level graph for differential testing.
func randomCascade(rng *rand.Rand) *graph.Graph {
	data := 4 + rng.IntN(12)
	b := graph.NewBuilder(data)
	leftFirst, leftCount := 0, data
	levels := 1 + rng.IntN(3)
	for li := 0; li < levels; li++ {
		rightCount := max(1, leftCount/2)
		rf := b.AddLevel(leftFirst, leftCount, rightCount)
		leftFirst, leftCount = rf, rightCount
		if leftCount < 2 {
			break
		}
	}
	g := b.Graph()
	for _, lv := range g.Levels {
		for r := lv.RightFirst; r < lv.RightFirst+lv.RightCount; r++ {
			deg := 1 + rng.IntN(min(3, lv.LeftCount))
			perm := rng.Perm(lv.LeftCount)
			lefts := make([]int, 0, deg)
			for _, p := range perm[:deg] {
				lefts = append(lefts, lv.LeftFirst+p)
			}
			g.SetNeighbors(r, lefts)
		}
	}
	return g
}

// Property: the incremental decoder agrees with the naive reference on
// random graphs and random erasure patterns, including back-to-back calls
// on one decoder instance (exercising Reset).
func TestQuickDecoderMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		g := randomCascade(rng)
		d := New(g)
		for trial := 0; trial < 20; trial++ {
			k := rng.IntN(g.Total + 1)
			perm := rng.Perm(g.Total)
			erased := perm[:k]
			if d.Recoverable(erased) != ReferenceRecoverable(g, erased) {
				t.Logf("mismatch: seed=%d graph=%v erased=%v", seed, g, erased)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Recoverable is monotone under adding available nodes — if a set
// S is recoverable, any subset of S is recoverable too.
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		g := randomCascade(rng)
		d := New(g)
		perm := rng.Perm(g.Total)
		k := rng.IntN(g.Total + 1)
		erased := perm[:k]
		if d.Recoverable(erased) {
			// Any subset must also be recoverable.
			for drop := 0; drop < len(erased); drop++ {
				sub := append(append([]int{}, erased[:drop]...), erased[drop+1:]...)
				if !d.Recoverable(sub) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDecodeResultOKHasNoLists(t *testing.T) {
	g := cascade(t)
	d := New(g)
	res := d.Decode([]int{0})
	if !res.OK || res.Unrecovered != nil || res.UnrecoveredData != nil {
		t.Errorf("Decode OK result = %+v", res)
	}
}

func BenchmarkRecoverableK5(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randomBench96(rng)
	d := New(g)
	erased := make([]int, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		d.Recoverable(erased)
	}
}

// randomBench96 builds a 96-node-scale cascade for benchmarking.
func randomBench96(rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(48)
	r1 := b.AddLevel(0, 48, 24)
	r2 := b.AddLevel(r1, 24, 12)
	rA := b.AddLevel(r2, 12, 6)
	rB := b.AddLevel(r2, 12, 6)
	g := b.Graph()
	fill := func(first, count, leftFirst, leftCount int) {
		for r := first; r < first+count; r++ {
			deg := 3 + rng.IntN(3)
			perm := rng.Perm(leftCount)
			lefts := make([]int, 0, deg)
			for _, p := range perm[:deg] {
				lefts = append(lefts, leftFirst+p)
			}
			g.SetNeighbors(r, lefts)
		}
	}
	fill(r1, 24, 0, 48)
	fill(r2, 12, r1, 24)
	fill(rA, 6, r2, 12)
	fill(rB, 6, r2, 12)
	return g
}
