package decode

import "math/bits"

// Kernel is the flat-array peeling kernel behind the exhaustive worst-case
// scans and Monte Carlo profiles. It trades the Decoder's generality
// (Supply, Decode reports, erase-anytime) for throughput on the one
// question the certification hot path asks: "is this erasure set
// recoverable?".
//
// Design (see DESIGN.md "Decoder kernels"):
//
//   - The erased set S lives in a bitmask plus a small list. A check's
//     missing-neighbor count is popcount(leftMask & erasedMask) against the
//     CSR's per-check neighbor masks, so EraseOne/RestoreOne are O(1) bit
//     flips — which is what makes revolving-door scans cheap: consecutive
//     combinations differ by one swap, so per-pattern set-up is two bit
//     flips instead of k erasures plus a full reset.
//   - Eval is tiered. The certificate fast path accepts a pattern when
//     every erased data node has a present parent check whose only missing
//     neighbor is that node — each such node is recoverable by one
//     independent application of peeling rule 1, so no order can
//     invalidate the verdict. The certificate is maintained incrementally
//     across erase/restore deltas (see the rescuer field), so on the bulk
//     of scan patterns Eval is a single length check.
//   - Interacting patterns fall through to a mask peel: the full peeling
//     fixpoint computed over just the ≤ |S| erased nodes on a scratch
//     mask. Nothing is ever written to per-node state, so there is
//     nothing to reset afterwards.
//   - For large erasure sets (Monte Carlo points deep in the failure
//     region) the O(|S|²) mask peel loses to the classic linear peel, so
//     Eval switches to a transient array peel: erase into present/missing
//     arrays, peel with a work stack, and restore the baseline
//     Decoder-style (recovered nodes' counter updates cancel out, so only
//     still-missing nodes need undoing).
//
// Every tier allocates nothing in the steady state. A Kernel is not safe
// for concurrent use; create one per goroutine. Many kernels may share one
// read-only CSR.
type Kernel struct {
	c    *CSR
	data int32 // == c.Data; avoids a second deref on the erase/restore path

	erasedMask []uint64 // the current erased set S as a bitmask
	eset       []int32  // S as an unordered list
	epos       []int32  // epos[v] = v's index in eset while erased
	edata      int32    // |S ∩ data|

	// Incremental certificate. rescuer[v] is the present check proved to
	// have erased data node v as its only missing neighbor, rescued[p] the
	// inverse (-1 = none); entries form a bijection over the currently
	// valid certificate pairs (npairs of them), and ulist (indexed by
	// upos) holds exactly the erased data nodes with no pair. The pair
	// (v, p) stays valid as long as p's erasure status and missing count
	// are untouched, and both can only change when a node equal to p or
	// in L(p) is erased — restores never invalidate a valid pair: if
	// restoring d ∈ L(p) dropped p's missing count below one, d was a
	// second missing neighbor besides v, so the pair was already invalid.
	// EraseOne therefore retires exactly the pairs its erasure touches
	// (check v itself plus every p ∈ Parents(v)), RestoreOne retires the
	// leaving node's own pair, and between mutations the structure is
	// always exact — which is what lets Eval answer "certified" as
	// len(ulist) == 0 without a per-pattern scan of the erased set.
	rescuer     []int32
	rescued     []int32
	rescuerMask []uint64 // bitmask of checks currently serving as rescuers
	npairs      int32
	ulist       []int32
	upos        []int32

	// Mask-peel scratch.
	workMask []uint64
	alive    []int32

	// Array-peel scratch; at baseline (all present, zero counters)
	// whenever Eval is not running.
	present []bool
	missing []int32
	stack   []int32
}

// maskPeelMaxK bounds the erasure-set size evaluated by the O(|S|²) mask
// peel; larger sets use the linear array peel. The crossover is shallow —
// mask rounds almost always terminate after one pass at scan
// cardinalities (k ≤ 6), while deep Monte Carlo points (k ≈ 40) are
// dominated by genuine peeling work where the array is better.
const maskPeelMaxK = 12

// NewKernel returns a Kernel over c in the baseline state (everything
// present, empty erasure set).
func NewKernel(c *CSR) *Kernel {
	k := &Kernel{
		c:           c,
		data:        c.Data,
		erasedMask:  make([]uint64, c.Words),
		eset:        make([]int32, 0, 16),
		epos:        make([]int32, c.Total),
		rescuer:     make([]int32, c.Total),
		rescued:     make([]int32, c.Total),
		rescuerMask: make([]uint64, c.Words),
		ulist:       make([]int32, 0, 16),
		upos:        make([]int32, c.Total),
		workMask:    make([]uint64, c.Words),
		alive:       make([]int32, 0, 16),
		present:     make([]bool, c.Total),
		missing:     make([]int32, c.Total),
		stack:       make([]int32, 0, 4*c.Total),
	}
	for i := range k.present {
		k.present[i] = true
	}
	for i := range k.rescuer {
		k.rescuer[i] = -1
		k.rescued[i] = -1
	}
	return k
}

// CSR returns the adjacency snapshot this kernel evaluates.
func (k *Kernel) CSR() *CSR { return k.c }

// Erased returns the size of the current erasure set.
func (k *Kernel) Erased() int { return len(k.eset) }

// MissingData returns the number of data nodes in the current erasure set.
// A set with MissingData() == 0 is trivially recoverable.
func (k *Kernel) MissingData() int { return int(k.edata) }

// IsErased reports whether node v is in the current erasure set.
func (k *Kernel) IsErased(v int) bool {
	return k.erasedMask[v>>6]&(1<<(uint(v)&63)) != 0
}

// Certified reports whether every erased data node currently holds a
// valid rule-1 certificate pair — i.e. the last Eval's fast path applies:
// the set is recoverable by npairs independent rule-1 applications, with
// no peeling needed. Only meaningful directly after an Eval that returned
// true (erase/restore deltas put touched nodes back on the uncertified
// list until the next Eval).
func (k *Kernel) Certified() bool { return len(k.ulist) == 0 }

// Rescuer returns the check certified to recover erased data node v by a
// single rule-1 application (present, exactly one missing left neighbor:
// v), or -1 if v holds no certificate pair. Only meaningful under the
// same conditions as Certified.
func (k *Kernel) Rescuer(v int32) int32 { return k.rescuer[v] }

// EraseOne adds node v to the erasure set. v must not already be erased.
func (k *Kernel) EraseOne(v int) {
	k.erasedMask[v>>6] |= 1 << (uint(v) & 63)
	k.epos[v] = int32(len(k.eset))
	k.eset = append(k.eset, int32(v))
	if int32(v) < k.data {
		k.edata++
		// v enters uncertified; Eval's walk certifies it (or not).
		k.upos[v] = int32(len(k.ulist))
		k.ulist = append(k.ulist, int32(v))
	}
	if k.npairs > 0 {
		k.dropPairsTouching(int32(v))
	}
}

// dropPairsTouching retires the certificate pairs v's erasure can break:
// the pair of check v itself, and of every check p with v ∈ L(p) — exactly
// Parents(v). Intersecting the CSR's parent bitmask with the active
// rescuer mask finds the affected checks in a couple of ANDs — on most
// scan steps the intersection is empty and no parent is visited. Each
// orphaned node rejoins ulist for Eval to re-certify.
func (k *Kernel) dropPairsTouching(v int32) {
	if w := k.rescued[v]; w >= 0 {
		k.dropPair(w, v)
	}
	words := k.c.Words
	pm := k.c.parMask[int(v)*words : (int(v)+1)*words]
	for i, rm := range k.rescuerMask {
		for hits := pm[i] & rm; hits != 0; hits &= hits - 1 {
			p := int32(i<<6 + bits.TrailingZeros64(hits))
			k.dropPair(k.rescued[p], p)
		}
	}
}

// dropPair dissolves the certificate pair (w, p) and returns w to ulist.
func (k *Kernel) dropPair(w, p int32) {
	k.rescued[p] = -1
	k.rescuer[w] = -1
	k.rescuerMask[p>>6] &^= 1 << (uint(p) & 63)
	k.npairs--
	k.upos[w] = int32(len(k.ulist))
	k.ulist = append(k.ulist, w)
}

// RestoreOne removes node v from the erasure set. v must be erased.
func (k *Kernel) RestoreOne(v int) {
	k.erasedMask[v>>6] &^= 1 << (uint(v) & 63)
	i, last := k.epos[v], int32(len(k.eset)-1)
	moved := k.eset[last]
	k.eset[i] = moved
	k.epos[moved] = i
	k.eset = k.eset[:last]
	if int32(v) >= k.data {
		return
	}
	k.edata--
	// v's own certificate pair (or ulist membership) dies with its
	// membership; no other pair can be invalidated by a restore (see the
	// rescuer field comment).
	if p := k.rescuer[v]; p >= 0 {
		k.rescued[p] = -1
		k.rescuer[v] = -1
		k.rescuerMask[p>>6] &^= 1 << (uint(p) & 63)
		k.npairs--
		return
	}
	j, ulast := k.upos[v], int32(len(k.ulist)-1)
	umoved := k.ulist[ulast]
	k.ulist[j] = umoved
	k.upos[umoved] = j
	k.ulist = k.ulist[:ulast]
}

// Swap applies a revolving-door step: node out leaves the erasure set,
// node in enters it.
func (k *Kernel) Swap(out, in int) {
	k.RestoreOne(out)
	k.EraseOne(in)
}

// erased reports whether node v is in the erased-set mask m.
func erased(m []uint64, v int32) bool {
	return m[v>>6]&(1<<(uint(v)&63)) != 0
}

// missingOf counts right node r's missing left neighbors against mask m.
// The Eval certificate loop hand-inlines the two-word flavor of this count
// instead of calling here: one call per parent per pattern is measurable
// at scan rates, and the function exceeds the compiler's inlining budget.
func (k *Kernel) missingOf(m []uint64, r int32) int {
	lm := k.c.leftMask[int(r)*k.c.Words:]
	n := 0
	for i, w := range m {
		n += bits.OnesCount64(lm[i] & w)
	}
	return n
}

// Eval reports whether the current erasure set is recoverable — peeling
// reconstructs every data node. The erasure set is untouched, so it can be
// delta-adjusted for the next pattern.
//
// The fast path is a single comparison: the certificate structure is
// maintained exactly by EraseOne/RestoreOne/Swap, so an empty ulist means
// every erased data node holds a valid pair — each is recoverable by one
// independent application of peeling rule 1, and no order can invalidate
// the verdict. Eval is small enough to inline into scan loops; everything
// else lives in evalWalk.
func (k *Kernel) Eval() bool {
	if len(k.ulist) == 0 {
		return true // every erased data node is certified (or none is erased)
	}
	return k.evalWalk()
}

// evalWalk tries to certify each node in ulist by walking its parents for
// a present check with that node as its only missing neighbor (the
// two-word missing count — graphs up to 128 nodes, the paper's 96-node
// cascades — is hand-inlined; see missingOf). Certified nodes move into
// pairs; patterns with a node no single check rescues fall through to the
// peeling fixpoint tiers.
func (k *Kernel) evalWalk() bool {
	em := k.erasedMask
	lm := k.c.leftMask
	twoWords := len(em) == 2
	var em0, em1 uint64
	if twoWords {
		// Hoisted: nothing in the certification loop writes the erased
		// mask, but the compiler cannot prove lm and em do not alias.
		em0, em1 = em[0], em[1]
	}
	for i := 0; i < len(k.ulist); {
		v := k.ulist[i]
		found := int32(-1)
		for _, pp := range k.c.Parents(v) {
			if erased(em, pp) {
				continue
			}
			var n int
			if twoWords {
				base := int(pp) * 2
				n = bits.OnesCount64(lm[base]&em0) + bits.OnesCount64(lm[base+1]&em1)
			} else {
				n = k.missingOf(em, pp)
			}
			if n == 1 {
				found = pp
				break
			}
		}
		if found < 0 {
			i++ // stays uncertified; later certifications can't help (masks are untouched)
			continue
		}
		k.rescuer[v] = found
		k.rescued[found] = v
		k.rescuerMask[found>>6] |= 1 << (uint(found) & 63)
		k.npairs++
		ulast := int32(len(k.ulist) - 1)
		umoved := k.ulist[ulast]
		k.ulist[i] = umoved
		k.upos[umoved] = int32(i)
		k.ulist = k.ulist[:ulast]
	}
	if len(k.ulist) == 0 {
		return true
	}
	if len(k.eset) <= maskPeelMaxK {
		return k.maskEval()
	}
	return k.arrayEval()
}

// maskEval runs the peeling fixpoint on a scratch copy of the erased-set
// mask, removing nodes as they become recoverable: an erased node x leaves
// the mask when a present parent's only missing neighbor is x (rule 1), or
// — for a check — when all of its left neighbors are present (rule 2,
// recomputation). Work is O(rounds · |S| · degree) with |S| ≤
// maskPeelMaxK, touching no per-node state.
// The certificate structure is exact whenever maskEval runs, so every
// rescuer entry ≥ 0 marks a node whose recovery is unconditional (a
// present parent recovers it by rule 1 regardless of peeling order);
// peeling fixpoints are order-independent, so those nodes start removed —
// the loop then works only the handful of genuinely interacting nodes.
func (k *Kernel) maskEval() bool {
	copy(k.workMask, k.erasedMask)
	alive := k.alive[:0]
	dataLeft := k.edata
	for _, v := range k.eset {
		if v < k.data && k.rescuer[v] >= 0 {
			k.workMask[v>>6] &^= 1 << (uint(v) & 63)
			dataLeft--
			continue
		}
		alive = append(alive, v)
	}
	for changed := true; changed && dataLeft > 0; {
		changed = false
		for i := 0; i < len(alive); {
			x := alive[i]
			removable := x >= k.data && k.missingOf(k.workMask, x) == 0
			if !removable {
				for _, p := range k.c.Parents(x) {
					if !erased(k.workMask, p) && k.missingOf(k.workMask, p) == 1 {
						removable = true
						break
					}
				}
			}
			if removable {
				k.workMask[x>>6] &^= 1 << (uint(x) & 63)
				if x < k.data {
					dataLeft--
				}
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				changed = true
			} else {
				i++
			}
		}
	}
	k.alive = alive[:0]
	return dataLeft == 0
}

// arrayEval is the linear-time path for large erasure sets: transiently
// erase into the present/missing arrays, peel to the verdict with a work
// stack, and restore the baseline. Restoration is Decoder-style: a node
// that peeling recovered has already cancelled its erasure's counter
// updates, so only still-missing nodes are undone — the restore cost
// tracks the failure's size, not the graph's.
func (k *Kernel) arrayEval() bool {
	stack := k.stack[:0]
	dataLeft := k.edata
	for _, v := range k.eset {
		k.present[v] = false
		for _, p := range k.c.Parents(v) {
			k.missing[p]++
			if k.missing[p] == 1 && k.present[p] {
				stack = append(stack, p)
			}
		}
		if v >= k.data && k.missing[v] == 0 {
			stack = append(stack, v)
		}
	}
	for len(stack) > 0 && dataLeft > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if k.present[r] {
			if k.missing[r] != 1 {
				continue
			}
			for _, l := range k.c.LeftNeighbors(r) {
				if !k.present[l] {
					stack, dataLeft = k.makePresent(l, stack, dataLeft)
					break
				}
			}
		} else if k.missing[r] == 0 {
			stack, dataLeft = k.makePresent(r, stack, dataLeft)
		}
	}
	for _, v := range k.eset {
		if !k.present[v] {
			k.present[v] = true
			for _, p := range k.c.Parents(v) {
				k.missing[p]--
			}
		}
	}
	k.stack = stack[:0]
	return dataLeft == 0
}

// makePresent marks v recovered/recomputed during arrayEval and pushes the
// checks its recovery may have activated.
func (k *Kernel) makePresent(v int32, stack []int32, dataLeft int32) ([]int32, int32) {
	k.present[v] = true
	if v < k.data {
		dataLeft--
	}
	for _, p := range k.c.Parents(v) {
		k.missing[p]--
		if k.present[p] {
			if k.missing[p] == 1 {
				stack = append(stack, p)
			}
		} else if k.missing[p] == 0 {
			stack = append(stack, p)
		}
	}
	if v >= k.data && k.missing[v] == 1 {
		stack = append(stack, v)
	}
	return stack, dataLeft
}

// Recoverable evaluates one erasure set from a clean or delta state:
// erased's nodes are added to the current set, the combined set is
// evaluated, and the added nodes are removed again. Duplicates (and nodes
// already in the set) are ignored. This is the one-shot path used by Monte
// Carlo sampling, where consecutive patterns share no structure.
func (k *Kernel) Recoverable(erasedNodes []int) bool {
	n0 := len(k.eset)
	for _, v := range erasedNodes {
		if !erased(k.erasedMask, int32(v)) {
			k.EraseOne(v)
		}
	}
	ok := k.Eval()
	for len(k.eset) > n0 {
		k.RestoreOne(int(k.eset[len(k.eset)-1]))
	}
	return ok
}
