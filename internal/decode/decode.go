// Package decode implements the iterative "peeling" reconstruction used by
// Tornado Codes (paper §2): a missing left node is recovered whenever one of
// its right (check) nodes is present with exactly one missing left neighbor,
// and a missing right node is recomputed whenever all of its left neighbors
// are present. The two rules are applied to fixpoint across all cascade
// levels; data survives if every data node is present afterwards.
//
// The package answers recoverability at two levels. Decoder is the general,
// stateful reconstruction engine — erase anytime, Supply recovered nodes,
// full Decode reports — and the oracle the kernel's differential tests run
// against. Kernel (over a shared read-only CSR snapshot) is the hot path of
// the exhaustive worst-case searches and Monte Carlo profiles (paper §3):
// it evaluates erasure patterns by incremental erase/restore/swap deltas
// with a tiered, allocation-free Eval, which is what lets the revolving-
// door scans in internal/sim test tens of millions of patterns per second.
// See DESIGN.md "Decoder kernels".
package decode

import (
	"sort"

	"tornado/internal/graph"
)

// Decoder evaluates erasure patterns against a fixed graph. It is not safe
// for concurrent use; create one Decoder per goroutine (they share the
// read-only graph).
type Decoder struct {
	g       *graph.Graph
	present []bool  // present[v]: node v's block is available (baseline: all true)
	missing []int32 // missing[r]: number of missing left neighbors of right node r (baseline: 0)
	queue   []int32 // work stack of right nodes to re-examine
	log     []int32 // every node erased since the last Reset (may contain duplicates)
}

// New returns a Decoder for g in the baseline state (everything present).
func New(g *graph.Graph) *Decoder {
	return &Decoder{
		g:       g,
		present: newTrue(g.Total),
		missing: make([]int32, g.Total),
		queue:   make([]int32, 0, 4*g.Total),
		log:     make([]int32, 0, g.Total),
	}
}

func newTrue(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}

// Graph returns the graph this decoder evaluates.
func (d *Decoder) Graph() *graph.Graph { return d.g }

// Present reports whether node v's block is currently available (either
// never erased, or recovered/recomputed by peeling, or supplied externally).
func (d *Decoder) Present(v int) bool { return d.present[v] }

// Erase marks nodes as missing. Erasing an already-missing node is a no-op.
// Call Peel afterwards to run reconstruction.
func (d *Decoder) Erase(nodes ...int) {
	for _, v := range nodes {
		if !d.present[v] {
			continue
		}
		d.present[v] = false
		d.log = append(d.log, int32(v))
		for _, p := range d.g.Parents(v) {
			d.missing[p]++
			if d.missing[p] == 1 && d.present[p] {
				d.queue = append(d.queue, p)
			}
		}
		if d.g.IsRight(v) && d.missing[v] == 0 {
			d.queue = append(d.queue, int32(v))
		}
	}
}

// Supply makes node v's block available from an external source (e.g. a
// replica site exchanging blocks, paper §5.3) and lets peeling continue from
// it. Supplying a present node is a no-op.
func (d *Decoder) Supply(v int) {
	if d.present[v] {
		return
	}
	d.makePresent(int32(v))
}

// makePresent marks v available and propagates the state change: parents'
// missing counts drop (possibly enabling recovery or recomputation), and if
// v is itself a right node with exactly one missing left neighbor it can now
// act as a check.
func (d *Decoder) makePresent(v int32) {
	d.present[v] = true
	for _, p := range d.g.Parents(int(v)) {
		d.missing[p]--
		if d.present[p] {
			if d.missing[p] == 1 {
				d.queue = append(d.queue, p)
			}
		} else if d.missing[p] == 0 {
			d.queue = append(d.queue, p)
		}
	}
	if d.g.IsRight(int(v)) && d.missing[v] == 1 {
		d.queue = append(d.queue, v)
	}
}

// Peel runs reconstruction to fixpoint.
func (d *Decoder) Peel() {
	for len(d.queue) > 0 {
		r := d.queue[len(d.queue)-1]
		d.queue = d.queue[:len(d.queue)-1]
		if d.present[r] {
			if d.missing[r] != 1 {
				continue
			}
			// Exactly one left neighbor missing: recover it.
			for _, l := range d.g.LeftNeighbors(int(r)) {
				if !d.present[l] {
					d.makePresent(l)
					break
				}
			}
		} else if d.missing[r] == 0 {
			// All left neighbors present: recompute the check itself.
			d.makePresent(r)
		}
	}
}

// AllDataPresent reports whether every data node is currently available.
func (d *Decoder) AllDataPresent() bool {
	for _, v := range d.log {
		if int(v) < d.g.Data && !d.present[v] {
			return false
		}
	}
	return true
}

// MissingData appends the IDs of data nodes currently missing to dst,
// sorted and deduplicated, and returns it.
func (d *Decoder) MissingData(dst []int) []int {
	return d.missingFiltered(dst, true)
}

// MissingNodes appends the IDs of all nodes currently missing to dst,
// sorted and deduplicated, and returns it.
func (d *Decoder) MissingNodes(dst []int) []int {
	return d.missingFiltered(dst, false)
}

func (d *Decoder) missingFiltered(dst []int, dataOnly bool) []int {
	start := len(dst)
	for _, v := range d.log {
		if d.present[v] {
			continue
		}
		if dataOnly && int(v) >= d.g.Data {
			continue
		}
		dst = append(dst, int(v))
	}
	tail := dst[start:]
	sort.Ints(tail)
	// Deduplicate (log may contain a node twice if it was erased, supplied,
	// and erased again).
	w := start
	for i, v := range dst[start:] {
		if i == 0 || v != dst[w-1] {
			dst[w] = v
			w++
		}
	}
	return dst[:w]
}

// Reset restores the baseline state (all nodes present). It runs in time
// proportional to the work done since the previous Reset.
func (d *Decoder) Reset() {
	for _, v := range d.log {
		if d.present[v] {
			continue
		}
		d.present[v] = true
		for _, p := range d.g.Parents(int(v)) {
			d.missing[p]--
		}
	}
	d.log = d.log[:0]
	d.queue = d.queue[:0]
}

// Recoverable reports whether erasing exactly the given nodes still allows
// all data nodes to be reconstructed. The decoder is reset afterwards, so
// consecutive calls are independent. This is the hot path of the testing
// system.
func (d *Decoder) Recoverable(erased []int) bool {
	d.Erase(erased...)
	d.Peel()
	ok := d.AllDataPresent()
	d.Reset()
	return ok
}

// Result describes the outcome of a full Decode.
type Result struct {
	OK              bool  // all data nodes recovered
	UnrecoveredData []int // data nodes permanently lost
	Unrecovered     []int // all nodes (data and check) still missing
}

// Decode evaluates an erasure pattern and reports which nodes could not be
// reconstructed. The decoder is reset afterwards.
func (d *Decoder) Decode(erased []int) Result {
	d.Erase(erased...)
	d.Peel()
	res := Result{OK: d.AllDataPresent()}
	if !res.OK {
		res.UnrecoveredData = d.MissingData(nil)
		res.Unrecovered = d.MissingNodes(nil)
	}
	d.Reset()
	return res
}
