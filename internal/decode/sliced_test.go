package decode

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/combin"
)

// slicedVerdicts evaluates a batch of up to 64 erasure patterns in one
// SlicedKernel word and returns the per-lane verdict bitmap.
func slicedVerdicts(sk *SlicedKernel, patterns [][]int) uint64 {
	sk.Reset()
	active := uint64(0)
	for L, p := range patterns {
		active |= 1 << uint(L)
		for _, v := range p {
			sk.Erase(v, 1<<uint(L))
		}
	}
	sk.SetActive(active)
	return sk.Eval()
}

// TestSlicedMatchesReferenceExhaustive is the sliced kernel's exhaustive
// differential arm: every erasure combination of every small graph at
// k ≤ 5, batched 64 lanes per word in revolving-door order (so the final
// word of each cardinality is partial), must agree lane-for-lane with
// both the scalar kernel and ReferenceRecoverable.
func TestSlicedMatchesReferenceExhaustive(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		csr := NewCSR(g)
		sk := NewSlicedKernel(csr)
		kn := NewKernel(csr)
		for k := 1; k <= min(5, g.Total); k++ {
			total, ok := combin.BinomialInt64(g.Total, k)
			if !ok {
				t.Fatalf("graph %d: C(%d,%d) overflows", gi, g.Total, k)
			}
			idx := make([]int, k)
			combin.GrayUnrank(idx, g.Total, 0)
			var batch [][]int
			flush := func() {
				got := slicedVerdicts(sk, batch)
				for L, p := range batch {
					want := ReferenceRecoverable(g, p)
					if kn.Recoverable(p) != want {
						t.Fatalf("graph %d: scalar kernel disagrees with reference on %v", gi, p)
					}
					if lane := got&(1<<uint(L)) != 0; lane != want {
						t.Fatalf("graph %d k=%d: sliced lane %d = %v, reference = %v (erased %v)",
							gi, k, L, lane, want, p)
					}
				}
				batch = batch[:0]
			}
			for r := int64(0); r < total; r++ {
				batch = append(batch, append([]int(nil), idx...))
				if len(batch) == Lanes {
					flush()
				}
				if r+1 < total {
					combin.GrayNext(idx, g.Total)
				}
			}
			flush()
		}
	}
}

// TestSlicedLaneBoundaries pins the word-edge cases: a single pattern in
// lane 0, the same pattern in lane 63, all 64 lanes holding an identical
// pattern, and inactive lanes with stale erased bits reporting 0.
func TestSlicedLaneBoundaries(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		csr := NewCSR(g)
		sk := NewSlicedKernel(csr)
		rng := rand.New(rand.NewPCG(uint64(gi), 0x51A9ED))
		for trial := 0; trial < 20; trial++ {
			n := rng.IntN(g.Total + 1)
			p := rng.Perm(g.Total)[:n]
			want := ReferenceRecoverable(g, p)

			for _, lane := range []uint{0, 63} {
				sk.Reset()
				sk.SetActive(1 << lane)
				for _, v := range p {
					sk.Erase(v, 1<<lane)
				}
				got := sk.Eval()
				if want {
					if got != 1<<lane {
						t.Fatalf("graph %d lane %d: verdict %#x, want %#x (erased %v)", gi, lane, got, uint64(1)<<lane, p)
					}
				} else if got != 0 {
					t.Fatalf("graph %d lane %d: verdict %#x, want 0 (erased %v)", gi, lane, got, p)
				}
			}

			// All 64 lanes identical: verdict must be all-ones or zero.
			sk.Reset()
			sk.SetActive(^uint64(0))
			for _, v := range p {
				sk.Erase(v, ^uint64(0))
			}
			got := sk.Eval()
			if want && got != ^uint64(0) {
				t.Fatalf("graph %d all-lanes: verdict %#x, want all-ones (erased %v)", gi, got, p)
			}
			if !want && got != 0 {
				t.Fatalf("graph %d all-lanes: verdict %#x, want 0 (erased %v)", gi, got, p)
			}

			// Inactive lanes stay silent even with erased bits set.
			sk.Reset()
			for _, v := range p {
				sk.Erase(v, ^uint64(0))
			}
			sk.SetActive(1 << 7)
			got = sk.Eval()
			if got&^(1<<7) != 0 {
				t.Fatalf("graph %d: inactive lanes reported verdicts: %#x", gi, got)
			}
		}
	}
}

// TestSlicedReuse drives one kernel through alternating heavy and light
// words and checks the between-Evals invariant holds (a stale word must
// not leak into the next verdict).
func TestSlicedReuse(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		csr := NewCSR(g)
		sk := NewSlicedKernel(csr)
		kn := NewKernel(csr)
		rng := rand.New(rand.NewPCG(uint64(gi)^0xABCD, 7))
		for trial := 0; trial < 30; trial++ {
			lanes := 1 + rng.IntN(Lanes)
			batch := make([][]int, lanes)
			for L := range batch {
				n := rng.IntN(g.Total + 1)
				batch[L] = rng.Perm(g.Total)[:n]
			}
			got := slicedVerdicts(sk, batch)
			for L, p := range batch {
				want := kn.Recoverable(p)
				if lane := got&(1<<uint(L)) != 0; lane != want {
					t.Fatalf("graph %d trial %d: sliced lane %d = %v, scalar = %v (erased %v)",
						gi, trial, L, lane, want, p)
				}
			}
		}
	}
}

// BenchmarkSlicedEvalWord measures the steady-state sliced fixpoint: one
// word of 64 distinct k=5 patterns (a shared 4-node suffix plus a
// sweeping smallest element — the scan's actual word shape) per op.
// Reported per-op cost therefore covers 64 pattern evaluations. Must not
// allocate.
func BenchmarkSlicedEvalWord(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randomBench96(rng)
	csr := NewCSR(g)
	sk := NewSlicedKernel(csr)
	suffix := []int{70, 75, 80, 85}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Reset()
		sk.SetActive(^uint64(0))
		for _, v := range suffix {
			sk.Erase(v, ^uint64(0))
		}
		for L := 0; L < Lanes; L++ {
			sk.Erase(L, 1<<uint(L))
		}
		if sk.Eval() == 0 {
			b.Fatal("benchmark word unexpectedly unrecoverable in every lane")
		}
	}
}
