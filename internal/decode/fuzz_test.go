package decode

import (
	"math/rand/v2"
	"testing"

	"tornado/internal/combin"
)

// FuzzKernelMatchesReference is the differential battery's randomized arm:
// a seeded random cascade graph plus a seeded stream of erasure sets,
// evaluated four ways — ReferenceRecoverable (the oracle), the stateful
// Decoder, the kernel's one-shot path, and the kernel's incremental path
// (mutating one long-lived kernel by per-set deltas, the revolving-door
// scan access pattern). Any disagreement is a finding. Erasure-set sizes
// deliberately straddle maskPeelMaxK so both the mask peel and the array
// peel are exercised, and a revolving-door burst checks Swap against the
// one-shot verdicts.
func FuzzKernelMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(2006), uint64(0))
	f.Add(uint64(0xDEAD), uint64(0xBEEF))
	f.Fuzz(func(t *testing.T, seed, stream uint64) {
		rng := rand.New(rand.NewPCG(seed, stream))
		g := randomCascade(rng)
		csr := NewCSR(g)
		oneShot := NewKernel(csr)
		incr := NewKernel(csr)
		d := New(g)

		cur := []int{} // incr's current erasure set
		for trial := 0; trial < 12; trial++ {
			k := rng.IntN(g.Total + 1)
			next := rng.Perm(g.Total)[:k]

			want := ReferenceRecoverable(g, next)
			if got := oneShot.Recoverable(next); got != want {
				t.Fatalf("one-shot kernel = %v, reference = %v (graph %v, erased %v)", got, want, g, next)
			}
			if got := d.Recoverable(next); got != want {
				t.Fatalf("decoder = %v, reference = %v (graph %v, erased %v)", got, want, g, next)
			}

			// Delta-update incr from cur to next: restore what left the
			// set, erase what entered it.
			inNext := make(map[int]bool, k)
			for _, v := range next {
				inNext[v] = true
			}
			inCur := make(map[int]bool, len(cur))
			for _, v := range cur {
				inCur[v] = true
				if !inNext[v] {
					incr.RestoreOne(v)
				}
			}
			for _, v := range next {
				if !inCur[v] {
					incr.EraseOne(v)
				}
			}
			cur = next
			if got := incr.Eval(); got != want {
				t.Fatalf("incremental kernel = %v, reference = %v (graph %v, erased %v)", got, want, g, next)
			}
		}

		// A revolving-door burst from a random rank: every swap-adjacent
		// pattern must agree with the one-shot verdict.
		k := 1 + rng.IntN(min(5, g.Total))
		total, ok := combin.BinomialInt64(g.Total, k)
		if !ok {
			return
		}
		idx := make([]int, k)
		start := rng.Int64N(total)
		combin.GrayUnrank(idx, g.Total, start)
		burst := NewKernel(csr)
		for _, v := range idx {
			burst.EraseOne(v)
		}
		for step := 0; step < 40; step++ {
			if got, want := burst.Eval(), oneShot.Recoverable(idx); got != want {
				t.Fatalf("gray-scan kernel = %v, one-shot = %v (graph %v, erased %v)", got, want, g, idx)
			}
			out, in, ok := combin.GrayNext(idx, g.Total)
			if !ok {
				break
			}
			burst.Swap(out, in)
		}
	})
}

// FuzzSlicedMatchesReference is the bit-sliced kernel's randomized arm:
// a seeded random cascade plus random words of up to 64 erasure patterns
// (random per-lane sizes, random active masks, one kernel reused across
// words), every active lane compared against both the scalar kernel and
// ReferenceRecoverable. This is the fuzz face of the differential battery
// required by the sliced scan path (see also TestSliced* and the
// pruning-soundness tests in internal/sim).
func FuzzSlicedMatchesReference(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(2006), uint64(0))
	f.Add(uint64(0x5EED), uint64(64))
	f.Fuzz(func(t *testing.T, seed, stream uint64) {
		rng := rand.New(rand.NewPCG(seed, stream))
		g := randomCascade(rng)
		csr := NewCSR(g)
		sk := NewSlicedKernel(csr)
		kn := NewKernel(csr)

		for word := 0; word < 8; word++ {
			lanes := 1 + rng.IntN(Lanes)
			active := uint64(0)
			patterns := make([][]int, lanes)
			sk.Reset()
			for L := 0; L < lanes; L++ {
				n := rng.IntN(g.Total + 1)
				patterns[L] = rng.Perm(g.Total)[:n]
				for _, v := range patterns[L] {
					sk.Erase(v, 1<<uint(L))
				}
				// Leave ~1/8 of the lanes inactive — their erased bits
				// stay set, so the verdict masking is fuzzed too.
				if rng.IntN(8) != 0 {
					active |= 1 << uint(L)
				}
			}
			sk.SetActive(active)
			got := sk.Eval()
			if got&^active != 0 {
				t.Fatalf("verdict %#x outside active mask %#x", got, active)
			}
			for L := 0; L < lanes; L++ {
				if active&(1<<uint(L)) == 0 {
					continue
				}
				want := ReferenceRecoverable(g, patterns[L])
				if kn.Recoverable(patterns[L]) != want {
					t.Fatalf("scalar kernel disagrees with reference on %v", patterns[L])
				}
				if lane := got&(1<<uint(L)) != 0; lane != want {
					t.Fatalf("sliced lane %d = %v, reference = %v (graph %v, erased %v)",
						L, lane, want, g, patterns[L])
				}
			}
		}
	})
}
