package decode

// Lanes is the pattern capacity of one SlicedKernel word: one uint64 lane
// per erasure pattern.
const Lanes = 64

// SlicedKernel evaluates up to 64 erasure patterns in one pass over the
// CSR adjacency by bit-slicing the peel state: lane L of every mask word
// belongs to pattern L, so the peeling rules advance all patterns
// simultaneously with word-wide boolean algebra instead of per-pattern
// counters.
//
// Layout (see DESIGN.md "Decoder kernels"):
//
//   - erased[v] is the lane-major transpose of the usual per-pattern
//     erasure bitmask: bit L set means node v is erased in pattern L.
//     missing[v] is the same transpose of the peel's working state.
//   - A check's per-lane missing-neighbor count never needs to be
//     materialized: the peel only asks "exactly one?" (rule 1) and
//     "exactly zero?" (rule 2), and both drop out of a carry-save
//     accumulation over the check's left neighbors — ones tracks count
//     parity, twos tracks "two or more", so count==1 is ones&^twos and
//     count==0 is ^ones&^twos. No popcount, no per-lane loop.
//   - Rule 1 fires for the lanes where the check is present and exactly
//     one neighbor is missing; each neighbor then recovers in
//     rescue & missing[l] — per lane there is only one such neighbor, so
//     the AND distributes the recovery correctly. Rule 2 recomputes a
//     missing check in the lanes where its count is zero. Both rules are
//     monotone (bits only clear), so the fixpoint terminates and, like
//     every peeling fixpoint, is independent of visit order — per lane the
//     result is exactly ReferenceRecoverable's.
//
// Eval visits only the checks adjacent to touched (somewhere-erased)
// nodes, returns a per-lane verdict bitmap, and leaves the erased masks
// intact for inspection. Nothing allocates in the steady state. A
// SlicedKernel is not safe for concurrent use; create one per goroutine.
// Many sliced kernels may share one read-only CSR (also with scalar
// Kernels).
type SlicedKernel struct {
	c    *CSR
	data int32

	active  uint64   // lanes holding a pattern; verdict bits outside are 0
	erased  []uint64 // [Total] lane-major erasure masks
	missing []uint64 // [Total] lane-major peel state; all-zero between Evals

	touched   []int32 // nodes with a nonzero erased mask
	isTouched []bool

	// Candidate checks of the current Eval: every check adjacent to a
	// touched node, plus every touched check (it may need rule-2
	// recomputation before it can rescue).
	checks  []int32
	onCheck []bool
}

// NewSlicedKernel returns an empty SlicedKernel over c: no active lanes,
// nothing erased.
func NewSlicedKernel(c *CSR) *SlicedKernel {
	return &SlicedKernel{
		c:         c,
		data:      c.Data,
		erased:    make([]uint64, c.Total),
		missing:   make([]uint64, c.Total),
		touched:   make([]int32, 0, c.Total),
		isTouched: make([]bool, c.Total),
		checks:    make([]int32, 0, c.Total),
		onCheck:   make([]bool, c.Total),
	}
}

// CSR returns the adjacency snapshot this kernel evaluates.
func (s *SlicedKernel) CSR() *CSR { return s.c }

// SetActive declares which lanes hold a pattern. Eval's verdict bitmap is
// masked to the active lanes; inactive lanes report 0 regardless of their
// erased bits.
func (s *SlicedKernel) SetActive(lanes uint64) { s.active = lanes }

// Active returns the current active-lane mask.
func (s *SlicedKernel) Active() uint64 { return s.active }

// Erase marks node v erased in every lane of lanes. Erasures accumulate
// (a second call ORs in more lanes); Reset clears all of them.
func (s *SlicedKernel) Erase(v int, lanes uint64) {
	if lanes == 0 {
		return
	}
	if !s.isTouched[v] {
		s.isTouched[v] = true
		s.touched = append(s.touched, int32(v))
	}
	s.erased[v] |= lanes
}

// ErasedLanes returns the lanes in which node v is currently erased.
func (s *SlicedKernel) ErasedLanes(v int) uint64 { return s.erased[v] }

// Reset clears every lane's erasure set and the active mask, returning
// the kernel to its post-NewSlicedKernel state without allocating.
func (s *SlicedKernel) Reset() {
	for _, v := range s.touched {
		s.erased[v] = 0
		s.isTouched[v] = false
	}
	s.touched = s.touched[:0]
	s.active = 0
}

// Eval runs the bit-sliced peeling fixpoint over all lanes at once and
// returns the per-lane verdict bitmap: bit L set means pattern L is
// recoverable (every data node it erased peels back). Only active lanes
// report; the erased masks are untouched, so lanes can be inspected or
// re-evaluated afterwards.
func (s *SlicedKernel) Eval() uint64 {
	if s.active == 0 {
		return 0
	}
	// Seed the peel state and collect the candidate checks. Nodes outside
	// touched keep missing == 0, which the inner loops read as "present in
	// every lane" — exactly right.
	checks := s.checks[:0]
	for _, v := range s.touched {
		s.missing[v] = s.erased[v]
		for _, p := range s.c.Parents(v) {
			if !s.onCheck[p] {
				s.onCheck[p] = true
				checks = append(checks, p)
			}
		}
		if v >= s.data && !s.onCheck[v] {
			s.onCheck[v] = true
			checks = append(checks, v)
		}
	}

	for {
		changed := false
		for _, r := range checks {
			// Carry-save count of r's missing left neighbors, all lanes at
			// once: ones = parity, twos = "two or more".
			var ones, twos uint64
			for _, l := range s.c.LeftNeighbors(r) {
				m := s.missing[l]
				twos |= ones & m
				ones ^= m
			}
			mr := s.missing[r]
			// Rule 2: a missing check with zero missing left neighbors is
			// recomputed from them.
			if re := mr & ^ones & ^twos; re != 0 {
				mr &^= re
				s.missing[r] = mr
				changed = true
			}
			// Rule 1: a present check with exactly one missing left
			// neighbor recovers it. Per qualifying lane exactly one
			// neighbor holds the missing bit, so ANDing the rescue lanes
			// into each neighbor clears precisely that node.
			if rescue := ^mr & ones & ^twos; rescue != 0 {
				for _, l := range s.c.LeftNeighbors(r) {
					if rec := rescue & s.missing[l]; rec != 0 {
						s.missing[l] &^= rec
						changed = true
					}
				}
			}
		}
		var failed uint64
		for _, v := range s.touched {
			if v < s.data {
				failed |= s.missing[v]
			}
		}
		if failed == 0 || !changed {
			// Restore the between-Evals invariant (missing all-zero, no
			// candidate marks) before reporting.
			for _, v := range s.touched {
				s.missing[v] = 0
			}
			for _, r := range checks {
				s.onCheck[r] = false
			}
			s.checks = checks[:0]
			return s.active &^ failed
		}
	}
}
