package decode

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"tornado/internal/combin"
	"tornado/internal/graph"
)

// TestKernelFixtures re-runs the Decoder fixture verdicts through the
// kernel's one-shot path.
func TestKernelFixtures(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		erased []int
		want   bool
	}{
		{"mirror pair loss", mirror(4), []int{0, 4}, false},
		{"mirror unrelated", mirror(4), []int{0, 5}, true},
		{"mirror all mirrors", mirror(4), []int{4, 5, 6, 7}, true},
		{"cascade chain", cascade(t), []int{0, 4}, true},
		{"cascade chain cut", cascade(t), []int{0, 4, 6}, false},
		{"cascade recompute", cascade(t), []int{0, 4, 5}, true},
		{"defect closed set", defective(t), []int{0, 1}, false},
		{"empty set", cascade(t), nil, true},
	}
	for _, tc := range cases {
		kn := NewKernel(NewCSR(tc.g))
		if got := kn.Recoverable(tc.erased); got != tc.want {
			t.Errorf("%s: kernel says %v, want %v", tc.name, got, tc.want)
		}
		if kn.Erased() != 0 || kn.MissingData() != 0 {
			t.Errorf("%s: kernel not restored: %d erased, %d data missing", tc.name, kn.Erased(), kn.MissingData())
		}
	}
}

// exhaustiveGraphs builds the small-graph corpus for the exhaustive
// equivalence tests: the hand-built fixtures plus seeded random cascades,
// all with n ≤ 20 nodes.
func exhaustiveGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	gs := []*graph.Graph{mirror(4), cascade(t), defective(t)}
	for seed := uint64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xC0DE))
		for {
			g := randomCascade(rng)
			if g.Total <= 20 {
				gs = append(gs, g)
				break
			}
		}
	}
	return gs
}

// TestKernelExhaustiveAgainstReference asserts, for every graph in the
// small corpus and every cardinality k ≤ 4, that the kernel (one-shot
// path), the Decoder, and ReferenceRecoverable agree on *every* erasure
// combination — the lexicographic enumeration half of the battery.
func TestKernelExhaustiveAgainstReference(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		kn := NewKernel(NewCSR(g))
		d := New(g)
		for k := 1; k <= 4 && k <= g.Total; k++ {
			combin.ForEach(g.Total, k, func(idx []int) bool {
				want := ReferenceRecoverable(g, idx)
				if got := kn.Recoverable(idx); got != want {
					t.Errorf("graph %d (%v) erased %v: kernel=%v reference=%v", gi, g, idx, got, want)
					return false
				}
				if got := d.Recoverable(idx); got != want {
					t.Errorf("graph %d (%v) erased %v: decoder=%v reference=%v", gi, g, idx, got, want)
					return false
				}
				return true
			})
		}
	}
}

// TestKernelGrayScanMatchesLexicographic asserts the incremental
// revolving-door scan — one Swap delta per step, never a full reset —
// produces the same per-combination verdicts as independent one-shot
// evaluation in lexicographic order, and that both orders visit the same
// C(n,k) combinations. This is the enumeration-ordering half of the
// battery: a stale counter or a bad undo log would desynchronize the
// incremental state within a few swaps.
func TestKernelGrayScanMatchesLexicographic(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		for k := 1; k <= 4 && k <= g.Total; k++ {
			lex := map[string]bool{}
			oracle := NewKernel(NewCSR(g))
			combin.ForEach(g.Total, k, func(idx []int) bool {
				lex[fmt.Sprint(idx)] = oracle.Recoverable(idx)
				return true
			})

			kn := NewKernel(NewCSR(g))
			idx := make([]int, k)
			combin.GrayUnrank(idx, g.Total, 0)
			for _, v := range idx {
				kn.EraseOne(v)
			}
			gray := map[string]bool{}
			for {
				key := fmt.Sprint(idx)
				if _, dup := gray[key]; dup {
					t.Fatalf("graph %d k=%d: gray order revisited %v", gi, k, idx)
				}
				got := kn.Eval()
				gray[key] = got
				want, known := lex[key]
				if !known {
					t.Fatalf("graph %d k=%d: gray order visited %v, absent from lexicographic order", gi, k, idx)
				}
				if got != want {
					t.Fatalf("graph %d (%v) k=%d erased %v: incremental=%v one-shot=%v", gi, g, k, idx, got, want)
				}
				if want != ReferenceRecoverable(g, idx) {
					t.Fatalf("graph %d k=%d erased %v: oracle disagrees with reference", gi, k, idx)
				}
				out, in, ok := combin.GrayNext(idx, g.Total)
				if !ok {
					break
				}
				kn.Swap(out, in)
			}
			if len(gray) != len(lex) {
				t.Fatalf("graph %d k=%d: gray visited %d combinations, lexicographic %d", gi, k, len(gray), len(lex))
			}
		}
	}
}

// TestKernelDeltaStateRestored: after any erase/eval/restore sequence the
// kernel is back at baseline and evaluates like a fresh instance.
func TestKernelDeltaStateRestored(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		g := randomCascade(rng)
		csr := NewCSR(g)
		kn := NewKernel(csr)
		for trial := 0; trial < 10; trial++ {
			k := rng.IntN(g.Total + 1)
			erased := rng.Perm(g.Total)[:k]
			for _, v := range erased {
				kn.EraseOne(v)
			}
			kn.Eval()
			for _, v := range erased {
				kn.RestoreOne(v)
			}
		}
		if kn.Erased() != 0 || kn.MissingData() != 0 {
			return false
		}
		// Baseline behavior must match a fresh kernel on fresh patterns.
		fresh := NewKernel(csr)
		for trial := 0; trial < 10; trial++ {
			k := rng.IntN(g.Total + 1)
			erased := rng.Perm(g.Total)[:k]
			if kn.Recoverable(erased) != fresh.Recoverable(erased) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestKernelSharedCSR: kernels sharing one CSR are independent — the
// per-worker usage pattern of the parallel scans.
func TestKernelSharedCSR(t *testing.T) {
	g := defective(t)
	csr := NewCSR(g)
	a, b := NewKernel(csr), NewKernel(csr)
	a.EraseOne(0)
	if !b.Recoverable([]int{0}) {
		t.Error("kernel b observed kernel a's erasures")
	}
	a.EraseOne(1)
	if a.Eval() {
		t.Error("closed set {0,1} must be unrecoverable")
	}
	if got := a.MissingData(); got != 2 {
		t.Errorf("a.MissingData() = %d, want 2 (pre-peeling state restored)", got)
	}
}

func BenchmarkKernelRecoverableK5(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randomBench96(rng)
	kn := NewKernel(NewCSR(g))
	erased := make([]int, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		kn.Recoverable(erased)
	}
}

// BenchmarkKernelGrayRecoverableK5 measures the steady-state incremental
// scan: one revolving-door swap and one Eval per pattern. This is the
// exhaustive-certification hot path; allocs/op must be zero.
func BenchmarkKernelGrayRecoverableK5(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := randomBench96(rng)
	kn := NewKernel(NewCSR(g))
	idx := make([]int, 5)
	combin.GrayUnrank(idx, g.Total, 0)
	for _, v := range idx {
		kn.EraseOne(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Eval()
		out, in, ok := combin.GrayNext(idx, g.Total)
		if !ok {
			combin.GrayUnrank(idx, g.Total, 0)
			for _, v := range idx {
				kn.RestoreOne(v)
			}
			b.Fatal("rank space exhausted") // C(96,5) >> any b.N
		}
		kn.Swap(out, in)
	}
}

// TestKernelIntrospection exercises the IsErased/Certified/Rescuer
// surface over every k=3 erasure set of the small corpus: membership
// queries must track the erasure set exactly, and whenever an Eval
// certifies the set, every erased data node must hold a valid rule-1
// pair — a present check whose only missing left neighbor is that node —
// with no two nodes sharing a rescuer.
func TestKernelIntrospection(t *testing.T) {
	for gi, g := range exhaustiveGraphs(t) {
		if g.Total < 3 {
			continue
		}
		csr := NewCSR(g)
		kn := NewKernel(csr)
		idx := make([]int, 3)
		combin.First(idx, g.Total)
		for _, v := range idx {
			kn.EraseOne(v)
		}
		certified := 0
		for {
			inSet := make(map[int]bool, len(idx))
			for _, v := range idx {
				inSet[v] = true
			}
			for v := 0; v < g.Total; v++ {
				if kn.IsErased(v) != inSet[v] {
					t.Fatalf("graph %d set %v: IsErased(%d) = %v", gi, idx, v, kn.IsErased(v))
				}
			}
			if kn.Eval() && kn.Certified() {
				certified++
				used := make(map[int32]bool, len(idx))
				for _, v := range idx {
					if v >= g.Data {
						continue
					}
					r := kn.Rescuer(int32(v))
					if r < 0 {
						t.Fatalf("graph %d set %v: certified but data node %d has no rescuer", gi, idx, v)
					}
					if kn.IsErased(int(r)) {
						t.Fatalf("graph %d set %v: rescuer %d of %d is itself erased", gi, idx, r, v)
					}
					if used[r] {
						t.Fatalf("graph %d set %v: rescuer %d certifies two nodes", gi, idx, r)
					}
					used[r] = true
					missing := 0
					sawV := false
					for _, l := range csr.LeftNeighbors(r) {
						if kn.IsErased(int(l)) {
							missing++
							sawV = sawV || int(l) == v
						}
					}
					if missing != 1 || !sawV {
						t.Fatalf("graph %d set %v: rescuer %d of %d has %d missing left neighbors (contains v: %v)",
							gi, idx, r, v, missing, sawV)
					}
				}
			}
			out, in, ok := combin.GrayNext(idx, g.Total)
			if !ok {
				break
			}
			kn.Swap(out, in)
		}
		if certified == 0 {
			t.Errorf("graph %d: no k=3 set took the certified fast path; the assertion body never ran", gi)
		}
		for _, v := range idx {
			kn.RestoreOne(v)
		}
		if kn.Erased() != 0 || kn.MissingData() != 0 {
			t.Errorf("graph %d: kernel not restored after scan", gi)
		}
	}
}
