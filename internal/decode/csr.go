package decode

import "tornado/internal/graph"

// CSR is a flat-array (compressed sparse row) snapshot of a graph's
// adjacency, built once and then shared read-only by any number of Kernels
// (one per worker goroutine). Both directions are flattened into offset +
// adjacency pairs so the peeling inner loops walk contiguous int32 slices
// instead of chasing the per-node slice headers of graph.Graph — the
// exhaustive scans evaluate tens of millions of patterns, so the pointer
// indirection per neighbor list is measurable.
//
// A CSR does not observe later mutations of the source graph (AddEdge,
// RewireEdge, …); build a fresh CSR after adjusting a graph. This is the
// access pattern of the certification loops, which re-certify a rewired
// graph from scratch anyway.
type CSR struct {
	Data  int32 // data node count; IDs 0..Data-1
	Total int32 // total node count

	// Parents of node v (the right nodes referencing v):
	// parAdj[parOff[v]:parOff[v+1]].
	parOff []int32
	parAdj []int32

	// Left neighbors of right node r: leftAdj[leftOff[r]:leftOff[r+1]].
	// Data nodes have empty ranges.
	leftOff []int32
	leftAdj []int32

	// Words is the length of a node bitmask: ceil(Total/64). leftMask holds
	// one Words-long bitmask per node (all-zero for data nodes) with the
	// bits of the node's left neighbors set, so a kernel can count a
	// check's missing neighbors against an erased-set mask with a couple
	// of AND+POPCNT operations instead of walking the adjacency list.
	Words    int
	leftMask []uint64

	// parMask is the transpose of leftMask: one Words-long bitmask per
	// node with the bits of the node's parents (the checks referencing
	// it) set. Kernels intersect it with their set of active rescuer
	// checks to find the certificate pairs an erasure breaks without
	// walking the parent list.
	parMask []uint64
}

// NewCSR flattens g's adjacency. The graph is not retained.
func NewCSR(g *graph.Graph) *CSR {
	c := &CSR{
		Data:    int32(g.Data),
		Total:   int32(g.Total),
		parOff:  make([]int32, g.Total+1),
		leftOff: make([]int32, g.Total+1),
	}
	var nPar, nLeft int32
	for v := 0; v < g.Total; v++ {
		c.parOff[v] = nPar
		nPar += int32(len(g.Parents(v)))
		c.leftOff[v] = nLeft
		if g.IsRight(v) {
			nLeft += int32(len(g.LeftNeighbors(v)))
		}
	}
	c.parOff[g.Total] = nPar
	c.leftOff[g.Total] = nLeft
	c.parAdj = make([]int32, 0, nPar)
	c.leftAdj = make([]int32, 0, nLeft)
	for v := 0; v < g.Total; v++ {
		c.parAdj = append(c.parAdj, g.Parents(v)...)
		if g.IsRight(v) {
			c.leftAdj = append(c.leftAdj, g.LeftNeighbors(v)...)
		}
	}
	c.Words = (g.Total + 63) / 64
	c.leftMask = make([]uint64, g.Total*c.Words)
	for r := g.Data; r < g.Total; r++ {
		m := c.leftMask[r*c.Words : (r+1)*c.Words]
		for _, l := range g.LeftNeighbors(r) {
			m[l>>6] |= 1 << (uint(l) & 63)
		}
	}
	c.parMask = make([]uint64, g.Total*c.Words)
	for v := 0; v < g.Total; v++ {
		m := c.parMask[v*c.Words : (v+1)*c.Words]
		for _, p := range g.Parents(v) {
			m[p>>6] |= 1 << (uint(p) & 63)
		}
	}
	return c
}

// LeftMask returns right node r's left neighbors as a Words-long bitmask.
// The caller must not mutate the returned slice.
func (c *CSR) LeftMask(r int32) []uint64 {
	return c.leftMask[int(r)*c.Words : (int(r)+1)*c.Words]
}

// ParentMask returns node v's parents (the checks referencing it) as a
// Words-long bitmask. The caller must not mutate the returned slice.
func (c *CSR) ParentMask(v int32) []uint64 {
	return c.parMask[int(v)*c.Words : (int(v)+1)*c.Words]
}

// Parents returns the right nodes referencing v. The caller must not
// mutate the returned slice.
func (c *CSR) Parents(v int32) []int32 { return c.parAdj[c.parOff[v]:c.parOff[v+1]] }

// LeftNeighbors returns the left-neighbor list of right node r. The caller
// must not mutate the returned slice.
func (c *CSR) LeftNeighbors(r int32) []int32 { return c.leftAdj[c.leftOff[r]:c.leftOff[r+1]] }
