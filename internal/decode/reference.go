package decode

import "tornado/internal/graph"

// ReferenceRecoverable is a deliberately simple O(levels · edges · rounds)
// implementation of the peeling rules, used as a differential-testing oracle
// for the incremental Decoder. It repeatedly scans every right node applying
// both reconstruction rules until a full pass makes no progress.
func ReferenceRecoverable(g *graph.Graph, erased []int) bool {
	present := make([]bool, g.Total)
	for i := range present {
		present[i] = true
	}
	for _, v := range erased {
		present[v] = false
	}
	for changed := true; changed; {
		changed = false
		for r := g.Data; r < g.Total; r++ {
			nMissing := 0
			missingLeft := -1
			for _, l := range g.LeftNeighbors(r) {
				if !present[l] {
					nMissing++
					missingLeft = int(l)
				}
			}
			if present[r] && nMissing == 1 {
				present[missingLeft] = true
				changed = true
			} else if !present[r] && nMissing == 0 {
				present[r] = true
				changed = true
			}
		}
	}
	for v := 0; v < g.Data; v++ {
		if !present[v] {
			return false
		}
	}
	return true
}
