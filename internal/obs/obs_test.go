package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters never decrease
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 4*time.Millisecond || mean > 7*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	// p50 lands in the 100µs bucket (bound 128µs); p99 in the 50ms bucket.
	if q := h.Quantile(0.5); q < 100*time.Microsecond || q > 256*time.Microsecond {
		t.Errorf("p50 = %v", q)
	}
	if q := h.Quantile(0.99); q < 50*time.Millisecond || q > 128*time.Millisecond {
		t.Errorf("p99 = %v", q)
	}
	if h.Quantile(1) < h.Quantile(0) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram not all-zero")
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(7)
	r.Histogram("lat").Observe(time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["a"] != 2 || snap.Gauges["b"] != 7 || snap.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.String() == "" {
		t.Error("flat rendering empty")
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler output not JSON: %v", err)
	}
	if decoded.Counters["a"] != 2 {
		t.Errorf("handler snapshot = %+v", decoded)
	}
}

// TestConcurrency exercises every metric type from many goroutines; run
// with -race.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
