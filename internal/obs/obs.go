// Package obs is the reproduction's stdlib-only observability layer:
// counters, gauges, and latency histograms collected in a Registry and
// exported as a JSON snapshot (expvar-style) or over HTTP. The steward
// federation stack threads a Registry through its client, server, and
// replicator so that bounded-latency behavior — retries, per-route request
// timing, site-down detections — is visible rather than inferred from
// logs.
//
// All metric types are safe for concurrent use. Counters and gauges are
// single atomics; histograms take a short mutex per observation.
package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored; counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, health flag, site count).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the level by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a latency histogram: bucket i counts
// observations with ceil(log2(µs)) == i, so the range spans 1µs..2^47µs
// (~4.5 years) — every latency this system can produce.
const histBuckets = 48

// Histogram is a latency histogram over exponential (power-of-two
// microsecond) buckets. The exponential layout keeps it fixed-size and
// allocation-free while preserving order-of-magnitude resolution, which is
// what operating decisions (is this call 1ms or 1s?) actually use.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets]int64
	count   int64
	sum     int64 // microseconds
	max     int64 // microseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // ceil(log2(us+1)): 0 → 0, 1 → 1, 1000 → 10
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += us
	if us > h.max {
		h.max = us
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum/h.count) * time.Microsecond
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// top edge of the bucket containing it. The bound is within 2× of the true
// value by construction.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen > rank {
			// Bucket b holds values in (2^(b-1), 2^b] microseconds.
			return time.Duration(int64(1)<<b) * time.Microsecond
		}
	}
	return time.Duration(h.max) * time.Microsecond
}

// stats snapshots a histogram.
func (h *Histogram) stats() HistogramStats {
	s := HistogramStats{
		Count:     h.Count(),
		P50Micros: h.Quantile(0.50).Microseconds(),
		P95Micros: h.Quantile(0.95).Microseconds(),
		P99Micros: h.Quantile(0.99).Microseconds(),
	}
	h.mu.Lock()
	if h.count > 0 {
		s.MeanMicros = h.sum / h.count
	}
	s.MaxMicros = h.max
	h.mu.Unlock()
	return s
}

// HistogramStats is the exported summary of one latency histogram, in
// microseconds (quantiles are bucket upper bounds).
type HistogramStats struct {
	Count      int64 `json:"count"`
	MeanMicros int64 `json:"mean_us"`
	P50Micros  int64 `json:"p50_us"`
	P95Micros  int64 `json:"p95_us"`
	P99Micros  int64 `json:"p99_us"`
	MaxMicros  int64 `json:"max_us"`
}

// Registry is a named collection of metrics. Lookups are get-or-create, so
// instrumentation sites never need registration ceremony; the same name
// always returns the same metric.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a registry, stable under JSON
// encoding (map keys sort lexically when marshaled).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot exports every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramStats, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.stats()
	}
	return s
}

// WriteTo renders the snapshot as sorted "name value" lines — the
// greppable flat form for logs and CLI output.
func (s Snapshot) String() string {
	type line struct{ k, v string }
	var lines []line
	for k, v := range s.Counters {
		lines = append(lines, line{k, fmt.Sprintf("%d", v)})
	}
	for k, v := range s.Gauges {
		lines = append(lines, line{k, fmt.Sprintf("%d", v)})
	}
	for k, v := range s.Histograms {
		lines = append(lines, line{k, fmt.Sprintf("count=%d mean=%dµs p99=%dµs", v.Count, v.MeanMicros, v.P99Micros)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].k < lines[j].k })
	out := ""
	for _, l := range lines {
		out += l.k + " " + l.v + "\n"
	}
	return out
}

// MergeSnapshots unions snapshots into one: counters sharing a name are
// summed (they count the same events observed from different registries);
// for gauges and histograms a later snapshot wins. Registries that use
// disjoint name prefixes (http.*, archive.*, chaos.*) merge losslessly.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStats{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
	}
	return out
}

// Handler serves the registry as a JSON snapshot — mounted by the steward
// server at /metrics.
func (r *Registry) Handler() http.Handler {
	return MergedHandler(r)
}

// MergedHandler serves the union of several registries as one JSON
// snapshot (see MergeSnapshots) — the steward server uses it to export its
// HTTP request metrics next to the archive store's self-healing and scrub
// counters on a single /metrics route.
func MergedHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snaps := make([]Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(MergeSnapshots(snaps...))
	})
}
