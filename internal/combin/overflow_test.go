package combin

import (
	"math"
	"math/big"
	"testing"
)

// TestBinomialInt64ExactBoundary pins the overflow check at the exact int64
// edge. C(2^32, 2) = 2^31·(2^32-1) = 9223372034707292160 is the largest
// pair-count of this form that fits; C(2^32+1, 2) exceeds MaxInt64 by a
// hair. A wrapping implementation passes the first and silently corrupts
// the second.
func TestBinomialInt64ExactBoundary(t *testing.T) {
	const n = 1 << 32
	v, ok := BinomialInt64(n, 2)
	if !ok || v != 9223372034707292160 {
		t.Fatalf("C(2^32,2) = %d, ok=%v; want 9223372034707292160, true", v, ok)
	}
	if _, ok := BinomialInt64(n+1, 2); ok {
		t.Fatalf("C(2^32+1,2) reported as fitting int64; it is %s",
			BinomialBig(n+1, 2))
	}
}

// TestBinomialInt64ArchivalScale covers the motivating case: the exhaustive
// rank space at n=100k, k=5 is ≈ 6.9e21 and must be rejected, while the
// k<=3 spaces still fit.
func TestBinomialInt64ArchivalScale(t *testing.T) {
	for k := 0; k <= 3; k++ {
		v, ok := BinomialInt64(100000, k)
		if !ok {
			t.Fatalf("C(100000,%d) unexpectedly reported overflow", k)
		}
		if want := BinomialBig(100000, k); big.NewInt(v).Cmp(want) != 0 {
			t.Fatalf("C(100000,%d) = %d, want %s", k, v, want)
		}
	}
	for k := 5; k <= 7; k++ {
		if v, ok := BinomialInt64(100000, k); ok {
			t.Fatalf("C(100000,%d) = %d reported as fitting; true value %s",
				k, v, BinomialBig(100000, k))
		}
	}
}

// TestBinomialInt64MatchesBig differentially checks the 128-bit
// multiplicative path against math/big over a grid that straddles the
// overflow frontier in both n and k (C(66,33) fits, C(68,34) does not).
func TestBinomialInt64MatchesBig(t *testing.T) {
	ns := []int{0, 1, 2, 5, 20, 62, 63, 64, 65, 66, 67, 68, 70, 96, 128,
		1000, 10000, 100000, 1 << 31, 1 << 32}
	maxI64 := new(big.Int).SetInt64(math.MaxInt64)
	for _, n := range ns {
		ks := []int{-1, 0, 1, 2, 3, 4, 5, n - 1, n, n + 1}
		if n <= 1000 {
			ks = append(ks, n/2) // big.Int.Binomial at k=n/2 is only tractable for modest n
		}
		for _, k := range ks {
			want := BinomialBig(n, k)
			fits := want.Cmp(maxI64) <= 0
			got, ok := BinomialInt64(n, k)
			if ok != fits {
				t.Fatalf("C(%d,%d): ok=%v, want fits=%v (value %s)", n, k, ok, fits, want)
			}
			if ok && big.NewInt(got).Cmp(want) != 0 {
				t.Fatalf("C(%d,%d) = %d, want %s", n, k, got, want)
			}
		}
	}
}

// TestBinomialInt64OutOfRange pins the out-of-range convention: the
// coefficient is exactly zero, which trivially fits.
func TestBinomialInt64OutOfRange(t *testing.T) {
	for _, c := range [][2]int{{5, -1}, {5, 6}, {0, 1}, {-3, 2}} {
		v, ok := BinomialInt64(c[0], c[1])
		if v != 0 || !ok {
			t.Fatalf("C(%d,%d) = %d, ok=%v; want 0, true", c[0], c[1], v, ok)
		}
	}
}
