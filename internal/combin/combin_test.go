package combin

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {96, 1, 96},
		{96, 2, 4560}, {96, 3, 142880}, {96, 4, 3321960},
		{96, 5, 61124064}, {10, 11, 0}, {10, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); math.Abs(got-c.want) > 1e-6*math.Max(1, c.want) {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialBigMatchesFloat(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			bf, _ := new(big.Float).SetInt(BinomialBig(n, k)).Float64()
			if rel := math.Abs(bf-Binomial(n, k)) / math.Max(1, bf); rel > 1e-9 {
				t.Fatalf("Binomial(%d,%d) float %v vs big %v", n, k, Binomial(n, k), bf)
			}
		}
	}
}

func TestBinomialInt64(t *testing.T) {
	v, ok := BinomialInt64(96, 5)
	if !ok || v != 61124064 {
		t.Errorf("BinomialInt64(96,5) = %d,%v", v, ok)
	}
	if _, ok := BinomialInt64(200, 100); ok {
		t.Error("BinomialInt64(200,100) should overflow int64")
	}
}

func TestLogBinomial(t *testing.T) {
	if got, want := LogBinomial(96, 5), math.Log(61124064); math.Abs(got-want) > 1e-9 {
		t.Errorf("LogBinomial(96,5) = %v, want %v", got, want)
	}
	if !math.IsInf(LogBinomial(5, 6), -1) {
		t.Error("LogBinomial out of range should be -Inf")
	}
	// C(96,48) ≈ e^63.5; check against big-int computation.
	f, _ := new(big.Float).SetInt(BinomialBig(96, 48)).Float64()
	if math.Abs(LogBinomial(96, 48)-math.Log(f)) > 1e-6 {
		t.Errorf("LogBinomial(96,48) = %v, want %v", LogBinomial(96, 48), math.Log(f))
	}
}

func TestFirstNext(t *testing.T) {
	idx := make([]int, 3)
	First(idx, 5)
	var all [][3]int
	for {
		all = append(all, [3]int{idx[0], idx[1], idx[2]})
		if !Next(idx, 5) {
			break
		}
	}
	if len(all) != 10 {
		t.Fatalf("enumerated %d combinations of C(5,3), want 10", len(all))
	}
	if all[0] != [3]int{0, 1, 2} || all[9] != [3]int{2, 3, 4} {
		t.Errorf("endpoints wrong: %v … %v", all[0], all[9])
	}
	// Strictly increasing lexicographic order.
	for i := 1; i < len(all); i++ {
		if !lexLess(all[i-1][:], all[i][:]) {
			t.Errorf("combination %v not < %v", all[i-1], all[i])
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRankUnrankRoundTrip(t *testing.T) {
	n, k := 12, 4
	total, _ := BinomialInt64(n, k)
	idx := make([]int, k)
	for r := int64(0); r < total; r++ {
		Unrank(idx, n, r)
		if got := Rank(idx, n); got != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
		}
	}
}

func TestEnumerationMatchesUnrank(t *testing.T) {
	n, k := 10, 3
	idx := make([]int, k)
	First(idx, n)
	u := make([]int, k)
	r := int64(0)
	for {
		Unrank(u, n, r)
		for i := range idx {
			if idx[i] != u[i] {
				t.Fatalf("rank %d: Next gives %v, Unrank gives %v", r, idx, u)
			}
		}
		r++
		if !Next(idx, n) {
			break
		}
	}
	if total, _ := BinomialInt64(n, k); r != total {
		t.Fatalf("enumerated %d, want %d", r, total)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	done := ForEach(6, 2, func(idx []int) bool {
		count++
		return count < 5
	})
	if done || count != 5 {
		t.Errorf("ForEach early stop: done=%v count=%d", done, count)
	}
	count = 0
	done = ForEach(6, 2, func(idx []int) bool { count++; return true })
	if !done || count != 15 {
		t.Errorf("ForEach full: done=%v count=%d, want 15", done, count)
	}
}

func TestForEachZeroK(t *testing.T) {
	count := 0
	ForEach(5, 0, func(idx []int) bool {
		if len(idx) != 0 {
			t.Errorf("k=0 got idx %v", idx)
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("k=0 enumerated %d, want 1", count)
	}
}

func TestRandomSubsetValidity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	idx := make([]int, 5)
	scratch := make(map[int]bool, 5)
	for trial := 0; trial < 200; trial++ {
		RandomSubset(idx, 96, rng, scratch)
		for i := 0; i < len(idx); i++ {
			if idx[i] < 0 || idx[i] >= 96 {
				t.Fatalf("element %d out of range", idx[i])
			}
			if i > 0 && idx[i] <= idx[i-1] {
				t.Fatalf("subset not strictly increasing: %v", idx)
			}
		}
	}
}

func TestRandomSubsetUniformity(t *testing.T) {
	// Each element of {0..9} should appear in a size-3 subset with
	// probability 3/10. Chi-square-ish sanity check over many draws.
	rng := rand.New(rand.NewPCG(7, 7))
	counts := make([]int, 10)
	idx := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		RandomSubset(idx, 10, rng, nil)
		for _, v := range idx {
			counts[v]++
		}
	}
	want := float64(trials) * 0.3
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d appeared %d times, want ≈%.0f", v, c, want)
		}
	}
}

func TestRandomSubsetFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	idx := make([]int, 7)
	RandomSubset(idx, 7, rng, nil)
	for i, v := range idx {
		if v != i {
			t.Fatalf("k=n subset = %v, want identity", idx)
		}
	}
}

func TestSplitRanges(t *testing.T) {
	rs := SplitRanges(10, 3)
	if len(rs) != 3 {
		t.Fatalf("got %d ranges", len(rs))
	}
	var covered int64
	prev := int64(0)
	for _, r := range rs {
		if r[0] != prev {
			t.Errorf("range gap: %v", rs)
		}
		covered += r[1] - r[0]
		prev = r[1]
	}
	if covered != 10 {
		t.Errorf("covered %d, want 10", covered)
	}
	if rs := SplitRanges(2, 5); len(rs) != 2 {
		t.Errorf("SplitRanges(2,5) = %v", rs)
	}
	if rs := SplitRanges(0, 3); len(rs) != 0 {
		t.Errorf("SplitRanges(0,3) = %v", rs)
	}
}

// Property: Rank is a bijection onto [0, C(n,k)) for random combinations.
func TestQuickRankBijective(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		n := 5 + r.IntN(20)
		k := 1 + r.IntN(n)
		idx := make([]int, k)
		RandomSubset(idx, n, rng, nil)
		rank := Rank(idx, n)
		total, _ := BinomialInt64(n, k)
		if rank < 0 || rank >= total {
			return false
		}
		back := make([]int, k)
		Unrank(back, n, rank)
		for i := range idx {
			if back[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitRangesDegenerate(t *testing.T) {
	cases := []struct {
		total int64
		parts int
		want  int // range count
	}{
		{total: 0, parts: 1, want: 0},
		{total: 0, parts: 0, want: 0},
		{total: -5, parts: 3, want: 0},
		{total: 7, parts: 0, want: 1},
		{total: 7, parts: -2, want: 1},
		{total: 1, parts: 1, want: 1},
		{total: 1, parts: 100, want: 1},
		{total: 3, parts: 7, want: 3},
	}
	for _, c := range cases {
		rs := SplitRanges(c.total, c.parts)
		if len(rs) != c.want {
			t.Errorf("SplitRanges(%d,%d) = %v, want %d ranges", c.total, c.parts, rs, c.want)
		}
	}
	// parts > total degrades to single-element ranges.
	for i, r := range SplitRanges(3, 7) {
		if r[0] != int64(i) || r[1] != int64(i)+1 {
			t.Errorf("SplitRanges(3,7)[%d] = %v, want [%d,%d)", i, r, i, i+1)
		}
	}
}

// Property: for any (total, parts), the ranges exactly tile [0, total) —
// contiguous, ascending, non-empty, no overlap — and sizes differ by at
// most one. Exercised with total = C(n,k) to mirror the exhaustive-search
// and campaign-sharding call sites.
func TestQuickSplitRangesTile(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		n := 1 + r.IntN(40)
		k := r.IntN(n + 1)
		total, ok := BinomialInt64(n, k)
		if !ok {
			return true
		}
		parts := 1 + r.IntN(64)
		if total < 64 && r.IntN(8) == 0 {
			parts = int(total) + 1 + r.IntN(3) // force parts > total
		}
		rs := SplitRanges(total, parts)
		if len(rs) > parts {
			return false
		}
		var prev, minSize, maxSize int64
		minSize = total + 1
		for _, rg := range rs {
			if rg[0] != prev || rg[1] <= rg[0] {
				return false // gap, overlap, or empty range
			}
			size := rg[1] - rg[0]
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			prev = rg[1]
		}
		if prev != total {
			return false // does not cover the full rank space
		}
		if len(rs) > 1 && maxSize-minSize > 1 {
			return false // near-equal split violated
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// --- Revolving-door (Gray code) enumeration ---

// grayEnumerate walks the whole revolving-door order for (n, k) via
// GrayUnrank(0) + GrayNext, returning every visited combination.
func grayEnumerate(t *testing.T, n, k int) [][]int {
	t.Helper()
	total, ok := BinomialInt64(n, k)
	if !ok {
		t.Fatalf("C(%d,%d) overflows", n, k)
	}
	idx := make([]int, k)
	GrayUnrank(idx, n, 0)
	var out [][]int
	for {
		cp := make([]int, k)
		copy(cp, idx)
		out = append(out, cp)
		if _, _, ok := GrayNext(idx, n); !ok {
			break
		}
	}
	if int64(len(out)) != total {
		t.Fatalf("gray order for (%d,%d) visited %d combinations, want %d", n, k, len(out), total)
	}
	return out
}

// TestGrayOrderVisitsAllOnce: the revolving-door order is a permutation of
// the lexicographic order — every combination exactly once.
func TestGrayOrderVisitsAllOnce(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for k := 1; k <= n; k++ {
			seen := map[string]bool{}
			for _, c := range grayEnumerate(t, n, k) {
				key := fmt.Sprint(c)
				if seen[key] {
					t.Fatalf("(%d,%d): combination %v visited twice", n, k, c)
				}
				seen[key] = true
				for i := 1; i < k; i++ {
					if c[i-1] >= c[i] {
						t.Fatalf("(%d,%d): combination %v not strictly increasing", n, k, c)
					}
				}
			}
		}
	}
}

// TestGrayOrderSingleSwap: consecutive combinations differ by exactly one
// element, and GrayNext reports precisely that (out, in) pair.
func TestGrayOrderSingleSwap(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for k := 1; k <= n; k++ {
			idx := make([]int, k)
			GrayUnrank(idx, n, 0)
			prev := map[int]bool{}
			for _, v := range idx {
				prev[v] = true
			}
			for {
				before := make(map[int]bool, k)
				for v := range prev {
					before[v] = true
				}
				out, in, ok := GrayNext(idx, n)
				if !ok {
					break
				}
				if !before[out] || before[in] || out == in {
					t.Fatalf("(%d,%d): swap (%d→%d) inconsistent with previous set %v", n, k, out, in, before)
				}
				delete(before, out)
				before[in] = true
				cur := map[int]bool{}
				for _, v := range idx {
					cur[v] = true
				}
				if len(cur) != k {
					t.Fatalf("(%d,%d): duplicate element after swap: %v", n, k, idx)
				}
				for v := range cur {
					if !before[v] {
						t.Fatalf("(%d,%d): successor %v does not match reported swap (%d→%d)", n, k, idx, out, in)
					}
				}
				prev = cur
			}
		}
	}
}

// TestGrayRankUnrankRoundTrip: GrayRank inverts GrayUnrank across the whole
// rank space, and ranks follow the enumeration order.
func TestGrayRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 10; n++ {
		for k := 1; k <= n; k++ {
			for r, c := range grayEnumerate(t, n, k) {
				if got := GrayRank(c, n); got != int64(r) {
					t.Fatalf("(%d,%d): GrayRank(%v) = %d, want %d", n, k, c, got, r)
				}
				idx := make([]int, k)
				GrayUnrank(idx, n, int64(r))
				if fmt.Sprint(idx) != fmt.Sprint(c) {
					t.Fatalf("(%d,%d): GrayUnrank(%d) = %v, want %v", n, k, r, idx, c)
				}
			}
		}
	}
}

// TestGrayUnrankMidStart: starting an enumeration from an arbitrary rank
// (the campaign-shard access pattern) continues the same global order.
func TestGrayUnrankMidStart(t *testing.T) {
	const n, k = 12, 4
	all := grayEnumerate(t, n, k)
	for _, start := range []int64{1, 7, 100, 300, int64(len(all) - 1)} {
		idx := make([]int, k)
		GrayUnrank(idx, n, start)
		for r := start; r < int64(len(all)); r++ {
			if fmt.Sprint(idx) != fmt.Sprint(all[r]) {
				t.Fatalf("rank %d (from %d): got %v, want %v", r, start, idx, all[r])
			}
			GrayNext(idx, n)
		}
	}
}

func TestGrayUnrankRejectsBadRank(t *testing.T) {
	for _, r := range []int64{-1, 6} { // C(4,2) = 6
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GrayUnrank accepted rank %d", r)
				}
			}()
			GrayUnrank(make([]int, 2), 4, r)
		}()
	}
}
