// Package combin supplies the combinatorial machinery behind the fault
// tolerance testing system: exact and floating-point binomial coefficients,
// lexicographic enumeration of k-combinations (used by the exhaustive
// worst-case search over (96 choose k) erasure patterns), combination
// ranking/unranking (used to stripe the exhaustive search across workers),
// and uniform random k-subset sampling (used by the Monte Carlo profiles).
package combin

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"math/rand/v2"
)

// ErrRankOverflow reports that a combination space is too large to rank
// with int64 arithmetic — C(n, k) > MaxInt64 — so the lexicographic and
// revolving-door rank plumbing (Rank/Unrank/GrayRank/GrayUnrank/
// SplitRanges) cannot address it. Callers hitting this at archival scale
// (e.g. C(100000, 5) ≈ 6.9e21) should switch from exhaustive enumeration
// to the sampled certification path, which never ranks the full space.
var ErrRankOverflow = errors.New("combin: combination space overflows int64 rank arithmetic")

// Binomial returns C(n, k) as a float64. It is exact for results that fit a
// float64 mantissa and a close approximation beyond; for exact arithmetic use
// BinomialBig. Binomial returns 0 for k < 0 or k > n.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

// BinomialBig returns C(n, k) exactly. It returns 0 for k < 0 or k > n.
func BinomialBig(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// BinomialInt64 returns C(n, k) as an int64 and reports whether the value
// fits without overflow. It is overflow-exact: the multiplicative recurrence
// r·(n-k+i)/i is evaluated with a 128-bit intermediate product
// (bits.Mul64/bits.Div64), and because every intermediate C(n-k+i, i) is
// itself a binomial bounded by C(n, k), the first step whose quotient
// exceeds MaxInt64 proves the final coefficient does too — there is no
// silent wrap and no spurious rejection. Out-of-range inputs (k < 0 or
// k > n) report (0, true): the coefficient is exactly zero.
func BinomialInt64(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	r := uint64(1)
	for i := 1; i <= k; i++ {
		hi, lo := bits.Mul64(r, uint64(n-k+i))
		if hi >= uint64(i) {
			// bits.Div64 panics when the quotient would not fit 64 bits;
			// hi >= divisor is exactly that condition, and a >= 2^64
			// intermediate certainly exceeds MaxInt64.
			return 0, false
		}
		q, rem := bits.Div64(hi, lo, uint64(i))
		if rem != 0 {
			// Cannot happen: r = C(n-k+i-1, i-1), so r·(n-k+i) is an exact
			// multiple of i. Guarded so a future edit fails loudly rather
			// than silently truncating.
			panic("combin: BinomialInt64 inexact division")
		}
		if q > math.MaxInt64 {
			return 0, false
		}
		r = q
	}
	return int64(r), true
}

// LogBinomial returns ln C(n, k), using the log-gamma function so very large
// coefficients (e.g. C(96,48)) stay representable.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// First fills idx with the lexicographically first k-combination of
// {0,…,n-1}, i.e. [0,1,…,k-1]. len(idx) determines k; it must satisfy
// 0 <= k <= n.
func First(idx []int, n int) {
	if len(idx) > n {
		panic(fmt.Sprintf("combin: k=%d exceeds n=%d", len(idx), n))
	}
	for i := range idx {
		idx[i] = i
	}
}

// Next advances idx to the next k-combination of {0,…,n-1} in lexicographic
// order, returning false when idx already holds the final combination
// [n-k,…,n-1]. idx must hold a valid combination (strictly increasing values
// in range).
func Next(idx []int, n int) bool {
	k := len(idx)
	for i := k - 1; i >= 0; i-- {
		if idx[i] < n-k+i {
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}

// Rank returns the zero-based lexicographic rank of the combination idx
// among all k-combinations of {0,…,n-1}.
func Rank(idx []int, n int) int64 {
	k := len(idx)
	var rank int64
	prev := -1
	for i, v := range idx {
		for x := prev + 1; x < v; x++ {
			c, ok := BinomialInt64(n-x-1, k-i-1)
			if !ok {
				panic("combin: Rank overflow; use big-int path")
			}
			rank += c
		}
		prev = v
	}
	return rank
}

// Unrank fills idx with the combination of {0,…,n-1} whose zero-based
// lexicographic rank is r. len(idx) determines k.
func Unrank(idx []int, n int, r int64) {
	k := len(idx)
	x := 0
	for i := 0; i < k; i++ {
		for {
			c, ok := BinomialInt64(n-x-1, k-i-1)
			if !ok {
				panic("combin: Unrank overflow; use big-int path")
			}
			if r < c {
				break
			}
			r -= c
			x++
		}
		idx[i] = x
		x++
	}
	if r != 0 {
		panic("combin: Unrank rank out of range")
	}
}

// RandomSubset fills idx with a uniformly random k-subset of {0,…,n-1} in
// increasing order using Floyd's algorithm. The scratch map avoids
// allocation across calls when reused; pass nil to allocate internally.
func RandomSubset(idx []int, n int, rng *rand.Rand, scratch map[int]bool) {
	k := len(idx)
	if k > n {
		panic(fmt.Sprintf("combin: k=%d exceeds n=%d", k, n))
	}
	if scratch == nil {
		scratch = make(map[int]bool, k)
	} else {
		clear(scratch)
	}
	i := 0
	for j := n - k; j < n; j++ {
		t := rng.IntN(j + 1)
		if scratch[t] {
			t = j
		}
		scratch[t] = true
		idx[i] = t
		i++
	}
	// Floyd's algorithm yields an unordered set; sort in place (k is small).
	insertionSort(idx)
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// ForEach enumerates every k-combination of {0,…,n-1} in lexicographic
// order, invoking fn with a reused slice (fn must not retain it). It stops
// early and returns false if fn returns false; otherwise returns true after
// full enumeration.
func ForEach(n, k int, fn func(idx []int) bool) bool {
	if k == 0 {
		return fn(nil)
	}
	idx := make([]int, k)
	First(idx, n)
	for {
		if !fn(idx) {
			return false
		}
		if !Next(idx, n) {
			return true
		}
	}
}

// --- Revolving-door (Gray code) enumeration ---
//
// The revolving-door order visits the k-combinations of {0,…,n-1} so that
// consecutive combinations differ by exactly one swapped element (one value
// leaves the set, one enters). It is the enumeration order of the
// incremental peeling kernel: an exhaustive scan applies a two-node
// erase/restore delta per pattern instead of erasing and resetting all k
// nodes. The order is defined recursively: Γ(n,k) lists the combinations
// without n-1 first (Γ(n-1,k)), then those with n-1 in reversed order
// (reverse(Γ(n-1,k-1)) each extended by n-1). GrayRank/GrayUnrank convert
// between a combination and its position in this order; GrayNext computes
// the successor in place (Knuth TAOCP 4A §7.2.1.3, Algorithm R).

// GrayNext advances idx (a strictly increasing k-combination of {0,…,n-1})
// to its successor in revolving-door order, returning the element swapped
// out and the element swapped in. It returns ok=false (idx unchanged) when
// idx is the final combination of the order.
func GrayNext(idx []int, n int) (out, in int, ok bool) {
	k := len(idx)
	if k == 0 {
		return 0, 0, false
	}
	// Easy changes on the smallest element (Algorithm R step R3).
	if k%2 == 1 {
		c2 := n
		if k > 1 {
			c2 = idx[1]
		}
		if idx[0]+1 < c2 {
			out = idx[0]
			idx[0]++
			return out, idx[0], true
		}
	} else if idx[0] > 0 {
		out = idx[0]
		idx[0]--
		return out, idx[0], true
	}
	// Alternate between trying to decrease c_j (R4) and increase c_j (R5),
	// j ascending. Odd k starts at R4, even k at R5.
	decrease := k%2 == 1
	for j := 2; j <= k; {
		if decrease {
			if idx[j-1] >= j {
				out = idx[j-1]
				idx[j-1] = idx[j-2]
				idx[j-2] = j - 2
				return out, j - 2, true
			}
		} else {
			next := n
			if j < k {
				next = idx[j]
			}
			if idx[j-1]+1 < next {
				out = idx[j-2]
				idx[j-2] = idx[j-1]
				idx[j-1]++
				return out, idx[j-1], true
			}
		}
		j++
		decrease = !decrease
	}
	return 0, 0, false
}

// GrayRank returns the zero-based revolving-door rank of the combination
// idx among all k-combinations of {0,…,n-1}.
func GrayRank(idx []int, n int) int64 {
	kk := len(idx)
	var rank int64
	sign := int64(1)
	for m := n; kk > 0; m-- {
		if idx[kk-1] == m-1 {
			// The combinations containing m-1 follow the C(m-1,kk) without
			// it, in reversed Γ(m-1,kk-1) order: position a+b-1-sub.
			a, okA := BinomialInt64(m-1, kk)
			b, okB := BinomialInt64(m-1, kk-1)
			if !okA || !okB {
				panic("combin: GrayRank overflow; use big-int path")
			}
			rank += sign * (a + b - 1)
			sign = -sign
			kk--
		}
	}
	return rank
}

// GrayUnrank fills idx with the combination of {0,…,n-1} whose zero-based
// revolving-door rank is r. len(idx) determines k.
func GrayUnrank(idx []int, n int, r int64) {
	kk := len(idx)
	if kk > n {
		panic(fmt.Sprintf("combin: k=%d exceeds n=%d", kk, n))
	}
	if total, ok := BinomialInt64(n, kk); !ok || r < 0 || r >= total {
		panic("combin: GrayUnrank rank out of range")
	}
	for m := n; kk > 0; m-- {
		a, okA := BinomialInt64(m-1, kk)
		if !okA {
			panic("combin: GrayUnrank overflow; use big-int path")
		}
		if r < a {
			continue // m-1 not in the combination
		}
		b, okB := BinomialInt64(m-1, kk-1)
		if !okB {
			panic("combin: GrayUnrank overflow; use big-int path")
		}
		idx[kk-1] = m - 1
		// Position within the reversed Γ(m-1,kk-1) block.
		r = b - 1 - (r - a)
		kk--
	}
	if r != 0 {
		panic("combin: GrayUnrank rank out of range")
	}
}

// SplitRanges divides the rank space [0, total) into at most parts
// contiguous half-open ranges of near-equal size for parallel exhaustive
// searches and campaign sharding. The returned ranges exactly tile
// [0, total) in ascending order with no overlap: sizes differ by at most
// one, larger ranges come first. Degenerate inputs are handled
// deterministically — parts < 1 is treated as 1, parts > total yields
// total single-element ranges, and total <= 0 yields nil (empty ranges are
// never emitted).
func SplitRanges(total int64, parts int) [][2]int64 {
	if total <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if int64(parts) > total {
		parts = int(total) // avoids iterating (and skipping) empty chunks
	}
	var out [][2]int64
	chunk := total / int64(parts)
	rem := total % int64(parts)
	var lo int64
	for i := 0; i < parts; i++ {
		size := chunk
		if int64(i) < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, [2]int64{lo, lo + size})
		lo += size
	}
	return out
}
