package graphml

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func TestSVGWellFormed(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := SVG(&buf, g, []int{0, 48, 95}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "<line", "<circle", "<rect", "level 1", "#ff5555",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	// One shape per node: 48 rects (data) + 48 circles (checks) + the
	// background rect.
	if got := strings.Count(s, "<rect"); got != 49 {
		t.Errorf("rect count = %d, want 49", got)
	}
	if got := strings.Count(s, "<circle"); got != 48 {
		t.Errorf("circle count = %d, want 48", got)
	}
	if got := strings.Count(s, "<line"); got != g.EdgeCount() {
		t.Errorf("line count = %d, want %d edges", got, g.EdgeCount())
	}
}

func TestSVGEscapesName(t *testing.T) {
	g := testGraph(t)
	g.Name = `<bad & "name">`
	var buf bytes.Buffer
	if err := SVG(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `<bad`) {
		t.Error("name not escaped")
	}
	if !strings.Contains(buf.String(), "&lt;bad &amp;") {
		t.Error("escaped form missing")
	}
}

func TestSVGNoHighlight(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := SVG(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#ff5555") || strings.Contains(buf.String(), "#cc0000") {
		t.Error("highlight colors present without highlights")
	}
}
