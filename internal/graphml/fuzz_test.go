package graphml

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"

	"tornado/internal/core"
)

// FuzzDecode feeds arbitrary bytes to the GraphML parser: it must reject
// malformed input with an error, never panic, and accept-and-revalidate
// its own output.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real graph, a truncation of it, and assorted junk.
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add("")
	f.Add("<graphml>")
	f.Add(`<?xml version="1.0"?><graphml xmlns="` + xmlns + `"><graph id="x" edgedefault="directed"><data key="data">2</data><data key="levels">0:2:2:1</data><node id="n0"/><edge source="n2" target="n0"/></graph></graphml>`)
	f.Add(strings.ReplaceAll(valid, "n48", "n9999"))

	f.Fuzz(func(t *testing.T, doc string) {
		g, err := Decode(strings.NewReader(doc))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be a valid graph that round-trips.
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var out bytes.Buffer
		if err := Encode(&out, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := Decode(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
