package graphml

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"tornado/internal/core"
)

// TestRoundTrip10k: the codec must carry an archival-scale streamed graph
// (n=10,000, an odd-halving cascade) through encode/decode bit-exactly —
// level geometry, edges, and the content fingerprint all survive.
func TestRoundTrip10k(t *testing.T) {
	p := core.DefaultParams()
	p.TotalNodes = 10000
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !graphsEqual(g, back) {
		t.Fatal("n=10k graph did not round-trip")
	}
	if g.Fingerprint() != back.Fingerprint() {
		t.Fatal("fingerprint changed across the round trip")
	}
}
