package graphml

import (
	"fmt"
	"io"
	"strings"

	"tornado/internal/graph"
)

// SVG renders the cascade as a standalone SVG document: data nodes in the
// left column, one column per check level, edges as lines, with the given
// nodes highlighted in red — a self-contained version of the testing
// suite's failed-graph rendering (paper §3) that needs no external
// Graphviz installation.
func SVG(w io.Writer, g *graph.Graph, highlight []int) error {
	hi := make(map[int]bool, len(highlight))
	for _, v := range highlight {
		hi[v] = true
	}

	const (
		colWidth  = 160
		rowHeight = 18
		radius    = 6
		marginX   = 50
		marginY   = 30
	)

	// Column index and row position per node.
	col := make([]int, g.Total)
	row := make([]int, g.Total)
	for v := 0; v < g.Data; v++ {
		col[v], row[v] = 0, v
	}
	maxRows := g.Data
	for i, lv := range g.Levels {
		for j := 0; j < lv.RightCount; j++ {
			v := lv.RightFirst + j
			col[v] = i + 1
			// Center small levels vertically against the data column.
			row[v] = j*g.Data/lv.RightCount + g.Data/(2*lv.RightCount)
		}
	}
	cols := len(g.Levels) + 1
	width := 2*marginX + (cols-1)*colWidth
	height := 2*marginY + maxRows*rowHeight

	x := func(v int) int { return marginX + col[v]*colWidth }
	y := func(v int) int { return marginY + row[v]*rowHeight }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `  <title>%s</title>`+"\n", xmlEscape(g.Name))
	b.WriteString(`  <rect width="100%" height="100%" fill="white"/>` + "\n")

	// Edges first, nodes on top.
	for r := g.Data; r < g.Total; r++ {
		for _, l := range g.LeftNeighbors(r) {
			stroke := "#bbbbbb"
			if hi[r] || hi[int(l)] {
				stroke = "#cc0000"
			}
			fmt.Fprintf(&b, `  <line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
				x(int(l)), y(int(l)), x(r), y(r), stroke)
		}
	}
	for v := 0; v < g.Total; v++ {
		fill := "#e8f0fe"
		if hi[v] {
			fill = "#ff5555"
		}
		if g.IsData(v) {
			fmt.Fprintf(&b, `  <rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333"/>`+"\n",
				x(v)-radius, y(v)-radius, 2*radius, 2*radius, fill)
		} else {
			fmt.Fprintf(&b, `  <circle cx="%d" cy="%d" r="%d" fill="%s" stroke="#333"/>`+"\n",
				x(v), y(v), radius, fill)
		}
		fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="8" font-family="monospace" text-anchor="middle">%d</text>`+"\n",
			x(v), y(v)+3, v)
	}

	// Column labels.
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="11" font-family="sans-serif">data</text>`+"\n", marginX-radius, marginY-12)
	for i := range g.Levels {
		fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="11" font-family="sans-serif">level %d</text>`+"\n",
			marginX+(i+1)*colWidth-radius, marginY-12, i+1)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
