package graphml

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tornado/internal/core"
	"tornado/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(21, 43)))
	if err != nil {
		t.Fatal(err)
	}
	g.Name = "tornado-96-test"
	return g
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.Data != b.Data || a.Total != b.Total || a.Name != b.Name || len(a.Levels) != len(b.Levels) {
		return false
	}
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] {
			return false
		}
	}
	for r := a.Data; r < a.Total; r++ {
		la, lb := a.LeftNeighbors(r), b.LeftNeighbors(r)
		if len(la) != len(lb) {
			return false
		}
		// Order-insensitive comparison.
		seen := map[int32]bool{}
		for _, l := range la {
			seen[l] = true
		}
		for _, l := range lb {
			if !seen[l] {
				return false
			}
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Error("round trip changed the graph")
	}
}

func TestEncodeProducesWellFormedGraphML(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`<?xml`, `graphml`, xmlns, `edgedefault="directed"`,
		`key="kind"`, `>data<`, `>check<`, `source="n48"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.graphml")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Error("file round trip changed the graph")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.graphml")); !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not xml":     "hello",
		"no graphs":   `<?xml version="1.0"?><graphml xmlns="` + xmlns + `"></graphml>`,
		"no metadata": `<?xml version="1.0"?><graphml xmlns="` + xmlns + `"><graph id="x" edgedefault="directed"></graph></graphml>`,
		"bad node id": `<?xml version="1.0"?><graphml xmlns="` + xmlns + `"><graph id="x" edgedefault="directed"><data key="data">1</data><data key="levels">0:1:1:1</data><node id="q5"/><edge source="q5" target="n0"/></graph></graphml>`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeRejectsMalformedEdgesAndLevels(t *testing.T) {
	doc := func(levels, edges string) string {
		return `<?xml version="1.0"?><graphml xmlns="` + xmlns + `"><graph id="x" edgedefault="directed">` +
			`<data key="data">2</data><data key="levels">` + levels + `</data>` +
			`<node id="n0"/><node id="n1"/><node id="n2"/>` + edges + `</graph></graphml>`
	}
	cases := map[string]string{
		"edge from non-check":   doc("0:2:2:1", `<edge source="n0" target="n1"/>`),
		"edge source oob":       doc("0:2:2:1", `<edge source="n9999" target="n0"/>`),
		"edge target oob":       doc("0:2:2:1", `<edge source="n2" target="n7"/>`),
		"duplicate edge":        doc("0:2:2:1", `<edge source="n2" target="n0"/><edge source="n2" target="n0"/>`),
		"negative level count":  doc("0:-2:2:1", ``),
		"level range too large": doc("0:5:2:1", ``),
		"huge node count":       doc("0:2:2:99999999", ``),
	}
	for name, d := range cases {
		if _, err := Decode(strings.NewReader(d)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeValidatesGraph(t *testing.T) {
	// Structurally parseable but invalid: data node 1 uncovered.
	doc := `<?xml version="1.0"?>
<graphml xmlns="` + xmlns + `">
  <graph id="bad" edgedefault="directed">
    <data key="data">2</data>
    <data key="levels">0:2:2:1</data>
    <node id="n0"/><node id="n1"/><node id="n2"/>
    <edge source="n2" target="n0"/>
  </graph>
</graphml>`
	if _, err := Decode(strings.NewReader(doc)); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestParseLevels(t *testing.T) {
	lv, err := parseLevels("0:48:48:24;48:24:72:12")
	if err != nil {
		t.Fatal(err)
	}
	if len(lv) != 2 || lv[1].RightFirst != 72 {
		t.Errorf("parseLevels = %+v", lv)
	}
	if _, err := parseLevels(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := parseLevels("1:2:3"); err == nil {
		t.Error("short spec accepted")
	}
}

func TestDOT(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := DOT(&buf, g, []int{0, 48}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"digraph", "rank=same", "fillcolor=red", "n0 [", "shape=box", "->",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Highlighted edge coloring present.
	if !strings.Contains(s, "[color=red]") {
		t.Error("DOT missing highlighted edges")
	}
}

func TestDOTEmptyName(t *testing.T) {
	g := testGraph(t)
	g.Name = ""
	var buf bytes.Buffer
	if err := DOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `digraph "graph"`) {
		t.Error("DOT default name missing")
	}
}
