// Package graphml serializes erasure graphs to and from GraphML, the
// format the paper's testing system uses "to simplify graph visualization
// and editing" (§3), and renders graphs to Graphviz DOT with failed nodes
// highlighted (the paper's failed-graph rendering).
//
// The cascade structure (data node count and level ranges) is stored as
// graph-level attributes so a round trip reproduces the exact Graph.
package graphml

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tornado/internal/graph"
)

const xmlns = "http://graphml.graphdrawing.org/xmlns"

type xmlGraphML struct {
	XMLName xml.Name   `xml:"graphml"`
	Xmlns   string     `xml:"xmlns,attr"`
	Keys    []xmlKey   `xml:"key"`
	Graphs  []xmlGraph `xml:"graph"`
}

type xmlKey struct {
	ID       string `xml:"id,attr"`
	For      string `xml:"for,attr"`
	AttrName string `xml:"attr.name,attr"`
	AttrType string `xml:"attr.type,attr"`
}

type xmlGraph struct {
	ID          string    `xml:"id,attr"`
	EdgeDefault string    `xml:"edgedefault,attr"`
	Data        []xmlData `xml:"data"`
	Nodes       []xmlNode `xml:"node"`
	Edges       []xmlEdge `xml:"edge"`
}

type xmlData struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

type xmlNode struct {
	ID   string    `xml:"id,attr"`
	Data []xmlData `xml:"data"`
}

type xmlEdge struct {
	Source string `xml:"source,attr"`
	Target string `xml:"target,attr"`
}

const (
	keyKind   = "kind"   // node: "data" or "check"
	keyData   = "data"   // graph: data node count
	keyLevels = "levels" // graph: "lf:lc:rf:rc;…"
)

// Encode writes g as GraphML. Edges run from each check node to the left
// nodes it covers (source=check, target=left).
func Encode(w io.Writer, g *graph.Graph) error {
	doc := xmlGraphML{
		Xmlns: xmlns,
		Keys: []xmlKey{
			{ID: keyKind, For: "node", AttrName: keyKind, AttrType: "string"},
			{ID: keyData, For: "graph", AttrName: keyData, AttrType: "int"},
			{ID: keyLevels, For: "graph", AttrName: keyLevels, AttrType: "string"},
		},
	}
	xg := xmlGraph{
		ID:          g.Name,
		EdgeDefault: "directed",
		Data: []xmlData{
			{Key: keyData, Value: strconv.Itoa(g.Data)},
			{Key: keyLevels, Value: levelString(g.Levels)},
		},
	}
	for v := 0; v < g.Total; v++ {
		kind := "check"
		if g.IsData(v) {
			kind = "data"
		}
		xg.Nodes = append(xg.Nodes, xmlNode{
			ID:   nodeID(v),
			Data: []xmlData{{Key: keyKind, Value: kind}},
		})
	}
	for r := g.Data; r < g.Total; r++ {
		for _, l := range g.LeftNeighbors(r) {
			xg.Edges = append(xg.Edges, xmlEdge{Source: nodeID(r), Target: nodeID(int(l))})
		}
	}
	doc.Graphs = []xmlGraph{xg}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("graphml: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Decode reads a GraphML document produced by Encode and reconstructs the
// Graph, including its level structure.
func Decode(r io.Reader) (*graph.Graph, error) {
	var doc xmlGraphML
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphml: parse: %w", err)
	}
	if len(doc.Graphs) != 1 {
		return nil, fmt.Errorf("graphml: want exactly 1 graph, got %d", len(doc.Graphs))
	}
	xg := doc.Graphs[0]

	data, levels := -1, []graph.Level(nil)
	for _, d := range xg.Data {
		switch d.Key {
		case keyData:
			v, err := strconv.Atoi(strings.TrimSpace(d.Value))
			if err != nil {
				return nil, fmt.Errorf("graphml: bad data count %q", d.Value)
			}
			data = v
		case keyLevels:
			lv, err := parseLevels(strings.TrimSpace(d.Value))
			if err != nil {
				return nil, err
			}
			levels = lv
		}
	}
	if data <= 0 || len(levels) == 0 {
		return nil, fmt.Errorf("graphml: missing graph metadata (data=%d, levels=%d)", data, len(levels))
	}
	// Bound and validate the declared structure before building: the
	// builder treats violations as programmer errors and panics, and
	// absurd counts would allocate unboundedly.
	const maxNodes = 1 << 20
	if data > maxNodes {
		return nil, fmt.Errorf("graphml: data node count %d exceeds limit", data)
	}
	total := data
	for i, lv := range levels {
		if lv.LeftCount <= 0 || lv.RightCount <= 0 || lv.LeftFirst < 0 {
			return nil, fmt.Errorf("graphml: level %d has invalid ranges %+v", i, lv)
		}
		if lv.LeftFirst+lv.LeftCount > total {
			return nil, fmt.Errorf("graphml: level %d left range exceeds %d known nodes", i, total)
		}
		total += lv.RightCount
		if total > maxNodes {
			return nil, fmt.Errorf("graphml: node count %d exceeds limit", total)
		}
	}

	b := graph.NewBuilder(data)
	for _, lv := range levels {
		b.AddLevel(lv.LeftFirst, lv.LeftCount, lv.RightCount)
	}
	g := b.Graph()
	g.Name = xg.ID

	for _, e := range xg.Edges {
		src, err := parseNodeID(e.Source)
		if err != nil {
			return nil, err
		}
		dst, err := parseNodeID(e.Target)
		if err != nil {
			return nil, err
		}
		// Validate before touching the graph: AddEdge treats violations
		// as programmer errors and panics, but here they are just
		// malformed input.
		li := g.LevelOfRight(src)
		if li < 0 {
			return nil, fmt.Errorf("graphml: edge source n%d is not a check node", src)
		}
		lv := g.Levels[li]
		if dst < lv.LeftFirst || dst >= lv.LeftFirst+lv.LeftCount {
			return nil, fmt.Errorf("graphml: edge (n%d, n%d) leaves level %d's left range", src, dst, li)
		}
		if g.HasEdge(src, dst) {
			return nil, fmt.Errorf("graphml: duplicate edge (n%d, n%d)", src, dst)
		}
		g.AddEdge(src, dst)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphml: decoded graph invalid: %w", err)
	}
	return g, nil
}

// WriteFile writes g to path as GraphML.
func WriteFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a GraphML graph from path.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

func nodeID(v int) string { return "n" + strconv.Itoa(v) }

func parseNodeID(s string) (int, error) {
	if !strings.HasPrefix(s, "n") {
		return 0, fmt.Errorf("graphml: bad node id %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("graphml: bad node id %q", s)
	}
	return v, nil
}

func levelString(levels []graph.Level) string {
	parts := make([]string, 0, len(levels))
	for _, lv := range levels {
		parts = append(parts, fmt.Sprintf("%d:%d:%d:%d", lv.LeftFirst, lv.LeftCount, lv.RightFirst, lv.RightCount))
	}
	return strings.Join(parts, ";")
}

func parseLevels(s string) ([]graph.Level, error) {
	if s == "" {
		return nil, fmt.Errorf("graphml: empty levels attribute")
	}
	var out []graph.Level
	for _, part := range strings.Split(s, ";") {
		var lv graph.Level
		if _, err := fmt.Sscanf(part, "%d:%d:%d:%d", &lv.LeftFirst, &lv.LeftCount, &lv.RightFirst, &lv.RightCount); err != nil {
			return nil, fmt.Errorf("graphml: bad level spec %q", part)
		}
		out = append(out, lv)
	}
	return out, nil
}

// DOT renders g as a Graphviz digraph, one rank per node tier, with the
// given nodes highlighted (the testing suite's "failed graph" rendering:
// unrecoverable nodes and the check dependencies related to the failure).
func DOT(w io.Writer, g *graph.Graph, highlight []int) error {
	hi := make(map[int]bool, len(highlight))
	for _, v := range highlight {
		hi[v] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n", dotName(g.Name))

	rank := func(label string, first, count int) {
		fmt.Fprintf(&b, "  { rank=same;")
		for v := first; v < first+count; v++ {
			fmt.Fprintf(&b, " n%d;", v)
		}
		fmt.Fprintf(&b, " } // %s\n", label)
	}
	rank("data", 0, g.Data)
	for i, lv := range g.Levels {
		rank(fmt.Sprintf("level %d", i+1), lv.RightFirst, lv.RightCount)
	}

	for v := 0; v < g.Total; v++ {
		attrs := []string{fmt.Sprintf("label=%q", strconv.Itoa(v))}
		if g.IsData(v) {
			attrs = append(attrs, "shape=box")
		}
		if hi[v] {
			attrs = append(attrs, `style=filled`, `fillcolor=red`)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", v, strings.Join(attrs, ", "))
	}
	for r := g.Data; r < g.Total; r++ {
		for _, l := range g.LeftNeighbors(r) {
			style := ""
			if hi[r] || hi[int(l)] {
				style = " [color=red]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", l, r, style)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotName(name string) string {
	if name == "" {
		return "graph"
	}
	return name
}
