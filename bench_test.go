// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus micro-benchmarks of the hot paths and ablations of the
// design choices called out in DESIGN.md.
//
// Each table benchmark regenerates its table through internal/exp (the
// same engine cmd/experiments uses) and prints it once, so
//
//	go test -bench=Table -benchtime=1x
//
// reproduces the whole evaluation. The preparation of the three "Tornado
// Graph n" instances (generate → screen → adjust → certify → profile) is
// shared and cached across benchmarks.
package tornado_test

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"tornado"
	"tornado/internal/exp"
)

var (
	benchOnce sync.Once
	benchCfg  exp.Config
	benchTGs  []*exp.TornadoGraph
	benchErr  error

	printOnce sync.Map
)

// benchPrep prepares the shared tornado graphs with the Quick
// configuration (adjust to k=3, certify to k=4; preserves every
// qualitative result — see EXPERIMENTS.md for the Full() runs).
func benchPrep(b *testing.B) ([]*exp.TornadoGraph, exp.Config) {
	b.Helper()
	benchOnce.Do(func() {
		benchCfg = exp.Quick()
		for i := range benchCfg.Seeds {
			tg, err := exp.PrepareTornado(benchCfg, i)
			if err != nil {
				benchErr = err
				return
			}
			benchTGs = append(benchTGs, tg)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTGs, benchCfg
}

// printTable emits a table once per process so -benchtime=10x runs stay
// readable.
func printTable(name, text string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable1_RAIDvsTornado(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, systems := exp.Table1(cfg, tgs)
		if len(systems) == 0 {
			b.Fatal("no systems")
		}
		printTable("table1", text)
	}
}

func BenchmarkTable2_Adjustment(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.Table2(cfg, tgs)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table2", text)
	}
}

func BenchmarkTable3_AltGraphs(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.Table3(cfg, tgs)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table3", text)
	}
}

func BenchmarkTable4_Cascades(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.Table4(cfg, tgs)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table4", text)
	}
}

func BenchmarkTable5_Reliability(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, pfails := exp.Table5(cfg, tgs, 0.01)
		if pfails["Mirrored"] <= 0 {
			b.Fatal("missing mirrored row")
		}
		printTable("table5", text)
	}
}

func BenchmarkTable6_Overhead(b *testing.B) {
	tgs, _ := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, nodes := exp.Table6(tgs)
		if len(nodes) != len(tgs) {
			b.Fatal("missing rows")
		}
		printTable("table6", text)
	}
}

func BenchmarkTable7_Federation(b *testing.B) {
	tgs, cfg := benchPrep(b)
	for _, tg := range tgs {
		if len(tg.CriticalSets) == 0 {
			b.Skip("no critical sets at the certification bound")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.Table7(cfg, tgs)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table7", text)
	}
}

func BenchmarkEq1_MirroredValidation(b *testing.B) {
	_, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, maxAbs, err := exp.Eq1Validation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("eq1", fmt.Sprintf("%smax |simulated − theory| = %.3g\n", text, maxAbs))
	}
}

func BenchmarkExtension_Overhead(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.TableOverhead(cfg, tgs)
		if err != nil {
			b.Fatal(err)
		}
		printTable("overhead", text)
	}
}

func BenchmarkExtension_MTTDL(b *testing.B) {
	tgs, cfg := benchPrep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, _, err := exp.TableMTTDL(cfg, tgs, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		printTable("mttdl", text)
	}
}

func BenchmarkFigure3Curves_CSV(b *testing.B) {
	tgs, cfg := benchPrep(b)
	_, systems := exp.Table1(cfg, tgs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if csv := exp.CurvesCSV(systems); len(csv) == 0 {
			b.Fatal("empty CSV")
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

func benchGraph(b *testing.B) *tornado.Graph {
	b.Helper()
	g, _, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkMicro_PeelingDecodeK5(b *testing.B) {
	g := benchGraph(b)
	d := tornado.NewDecoder(g)
	rng := rand.New(rand.NewPCG(1, 1))
	erased := make([]int, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		d.Recoverable(erased)
	}
}

func BenchmarkMicro_ExhaustiveK3(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 3})
		if err != nil {
			b.Fatal(err)
		}
		if res.Tested == 0 {
			b.Fatal("nothing tested")
		}
	}
}

func BenchmarkMicro_Generate96(b *testing.B) {
	p := tornado.DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := tornado.Generate(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_Encode4KiBBlocks(b *testing.B) {
	g := benchGraph(b)
	c, err := tornado.NewCodec(g, 4096)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, c.Capacity())
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_MonteCarloPoint(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tornado.Profile(g, tornado.ProfileOptions{
			Trials: 5000, MinK: 24, MaxK: 24, ExhaustiveLimit: 1, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations of DESIGN.md's called-out choices ---

// Ablation: the incremental decoder against the naive reference scan.
func BenchmarkAblation_ReferenceDecoderK5(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewPCG(1, 1))
	erased := make([]int, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		referenceRecoverable(g, erased)
	}
}

// referenceRecoverable mirrors internal/decode.ReferenceRecoverable using
// only the public API (kept here so the ablation compiles outside the
// internal tree).
func referenceRecoverable(g *tornado.Graph, erased []int) bool {
	present := make([]bool, g.Total)
	for i := range present {
		present[i] = true
	}
	for _, v := range erased {
		present[v] = false
	}
	for changed := true; changed; {
		changed = false
		for r := g.Data; r < g.Total; r++ {
			nMissing, missing := 0, -1
			for _, l := range g.LeftNeighbors(r) {
				if !present[l] {
					nMissing++
					missing = int(l)
				}
			}
			if present[r] && nMissing == 1 {
				present[missing] = true
				changed = true
			} else if !present[r] && nMissing == 0 {
				present[r] = true
				changed = true
			}
		}
	}
	for v := 0; v < g.Data; v++ {
		if !present[v] {
			return false
		}
	}
	return true
}

// Ablation: defect screening cost and acceptance (generation with and
// without the §3.2 screen+repair).
func BenchmarkAblation_GenerateUnscreened(b *testing.B) {
	p := tornado.DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := tornado.GenerateUnscreened(p, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: guided vs naive retrieval — devices touched per archive read.
func BenchmarkAblation_GuidedRetrieval(b *testing.B) {
	benchmarkRetrieval(b, false)
}

func BenchmarkAblation_NaiveRetrieval(b *testing.B) {
	benchmarkRetrieval(b, true)
}

func benchmarkRetrieval(b *testing.B, naive bool) {
	g := benchGraph(b)
	store, err := tornado.NewArchive(g, tornado.NewDevices(g.Total), tornado.ArchiveConfig{
		BlockSize: 512, NaiveRetrieval: naive,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 20000)
	if err := store.Put("obj", payload); err != nil {
		b.Fatal(err)
	}
	store.Devices()[7].Fail()
	var touched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := store.Get("obj")
		if err != nil {
			b.Fatal(err)
		}
		touched = stats.DevicesAccessed
	}
	b.ReportMetric(float64(touched), "devices/get")
}
