// Command stewardd serves one archival stewarding site over HTTP: a
// Tornado-coded object store (paper §2.2/§6) with object, block, health,
// and scrub endpoints — the building block of the federated data
// stewarding system of §5.3. Request metrics are served at /metrics and a
// liveness probe at /healthz; SIGINT/SIGTERM drains in-flight requests
// before exiting.
//
// Usage:
//
//	stewardd -listen :8080 -seed 2006 -adjust 3
//	stewardd -listen :8081 -graph precompiled/tornado96-2.graphml
//
// Run two instances with different graphs and point `steward -sites` at
// both for a federation.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stewardd: ")

	var (
		listen      = flag.String("listen", ":8080", "listen address")
		graphPath   = flag.String("graph", "", "GraphML erasure graph (overrides -seed)")
		precompiled = flag.String("precompiled", "", "use a shipped certified graph by name (e.g. tornado96-1)")
		seed        = flag.Uint64("seed", 2006, "generate the site graph from this seed")
		adjustK     = flag.Int("adjust", 3, "adjust the generated graph to tolerate this cardinality")
		block       = flag.Int("block", 4096, "stripe block size in bytes")
		drain       = flag.Duration("drain", 10*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var g *tornado.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = tornado.LoadGraphML(*graphPath)
	case *precompiled != "":
		g, err = tornado.LoadPrecompiled(*precompiled)
	default:
		g, _, err = tornado.Generate(tornado.DefaultParams(), *seed)
		if err == nil && *adjustK > 0 {
			g, _, err = tornado.ImproveCtx(ctx, g, *adjustK, tornado.AdjustOptions{}, *seed+1)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	store, err := tornado.NewArchive(g, tornado.NewDevices(g.Total), tornado.ArchiveConfig{
		BlockSize: *block,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("site graph: %v", g)
	log.Printf("serving on %s (metrics at /metrics, liveness at /healthz)", *listen)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           tornado.NewSiteServer(store),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down (draining up to %v)", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
	}
}
