// Command stewardd serves one archival stewarding site over HTTP: a
// Tornado-coded object store (paper §2.2/§6) with object, block, health,
// and scrub endpoints — the building block of the federated data
// stewarding system of §5.3.
//
// Usage:
//
//	stewardd -listen :8080 -seed 2006 -adjust 3
//	stewardd -listen :8081 -graph precompiled/tornado96-2.graphml
//
// Run two instances with different graphs and point `steward -sites` at
// both for a federation.
package main

import (
	"flag"
	"log"
	"net/http"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stewardd: ")

	var (
		listen      = flag.String("listen", ":8080", "listen address")
		graphPath   = flag.String("graph", "", "GraphML erasure graph (overrides -seed)")
		precompiled = flag.String("precompiled", "", "use a shipped certified graph by name (e.g. tornado96-1)")
		seed        = flag.Uint64("seed", 2006, "generate the site graph from this seed")
		adjustK     = flag.Int("adjust", 3, "adjust the generated graph to tolerate this cardinality")
		block       = flag.Int("block", 4096, "stripe block size in bytes")
	)
	flag.Parse()

	var g *tornado.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = tornado.LoadGraphML(*graphPath)
	case *precompiled != "":
		g, err = tornado.LoadPrecompiled(*precompiled)
	default:
		g, _, err = tornado.Generate(tornado.DefaultParams(), *seed)
		if err == nil && *adjustK > 0 {
			g, _, err = tornado.Improve(g, *adjustK, tornado.AdjustOptions{}, *seed+1)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	store, err := tornado.NewArchive(g, tornado.NewDevices(g.Total), tornado.ArchiveConfig{
		BlockSize: *block,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("site graph: %v", g)
	log.Printf("serving on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, tornado.NewSiteServer(store)))
}
