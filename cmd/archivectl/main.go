// Command archivectl drives the prototype archival storage system through
// a scripted fault-injection scenario: build a 96-device store over a
// profiled Tornado graph, upload objects, fail devices, read everything
// back through reconstruction, replace the drives, and scrub — the
// lifecycle of the stewarding system the paper proposes (§2.2, §6).
//
// Usage:
//
//	archivectl -objects 20 -size 100000 -fail 4 -seed 2006
//	archivectl -maid -poweron 24        # run the same scenario on a MAID shelf
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os/signal"
	"syscall"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("archivectl: ")

	var (
		seed     = flag.Uint64("seed", 2006, "graph generation seed")
		adjustK  = flag.Int("adjust", 3, "adjust the graph to tolerate this cardinality")
		objects  = flag.Int("objects", 10, "objects to store")
		size     = flag.Int("size", 50000, "bytes per object")
		block    = flag.Int("block", 4096, "stripe block size")
		failN    = flag.Int("fail", 4, "devices to fail mid-scenario")
		maidOn   = flag.Bool("maid", false, "run on a power-managed MAID shelf")
		powerOn  = flag.Int("poweron", 48, "MAID power budget (max spinning drives)")
		parallel = flag.Int("parallel", tornado.DefaultStreamParallelism,
			"stripe pipeline width for streaming puts/gets")
	)
	flag.Parse()

	// Ctrl-C cancels the graph adjustment and worst-case search — the
	// slow phases — via the ctx-first facade entry points.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	g, _, err := tornado.Generate(tornado.DefaultParams(), *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *adjustK > 0 {
		if g, _, err = tornado.ImproveCtx(ctx, g, *adjustK, tornado.AdjustOptions{}, *seed+1); err != nil {
			log.Fatal(err)
		}
	}
	wc, err := tornado.WorstCaseCtx(ctx, g, tornado.WorstCaseOptions{MaxK: *adjustK + 1})
	if err != nil {
		log.Fatal(err)
	}
	firstFailure := wc.FirstFailure
	if !wc.Found {
		firstFailure = *adjustK + 2
	}
	log.Printf("graph ready: %v (first failure %d)", g, firstFailure)

	devices := tornado.NewDevices(g.Total)
	cfg := tornado.ArchiveConfig{BlockSize: *block, FirstFailure: firstFailure}
	var store *tornado.Archive
	var shelf *tornado.Shelf
	if *maidOn {
		if shelf, err = tornado.NewShelf(devices, *powerOn); err != nil {
			log.Fatal(err)
		}
		store, err = tornado.NewArchiveWithBackend(g, tornado.NewShelfBackend(shelf), cfg)
		log.Printf("MAID shelf: %d devices, power budget %d", len(devices), *powerOn)
	} else {
		store, err = tornado.NewArchive(g, devices, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(*seed, 99))
	par := tornado.WithStreamParallelism(*parallel)
	payloads := map[string][]byte{}
	for i := 0; i < *objects; i++ {
		name := fmt.Sprintf("object-%03d", i)
		data := make([]byte, *size)
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		if _, err := store.PutStream(ctx, name, bytes.NewReader(data), par); err != nil {
			log.Fatal(err)
		}
		payloads[name] = data
	}
	log.Printf("stored %d objects of %d bytes (%d stripes each)",
		*objects, *size, store.List()[0].Stripes)

	if *maidOn {
		shelf.ParkAll()
	}

	failed := devices.FailRandom(*failN, rng)
	log.Printf("failed devices: %v", failed)

	var totalAccessed, gets int
	var got bytes.Buffer
	for name, want := range payloads {
		got.Reset()
		_, stats, err := store.GetStream(ctx, name, &got, par)
		if err != nil {
			log.Fatalf("get %s after failures: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			log.Fatalf("get %s: payload corrupted", name)
		}
		totalAccessed += stats.DevicesAccessed
		gets++
	}
	log.Printf("read back all %d objects intact; avg %.1f devices accessed per get",
		gets, float64(totalAccessed)/float64(gets))
	if *maidOn {
		log.Printf("MAID spin-ups so far: %d (budget %d)", shelf.SpinUps(), shelf.Budget())
	}

	rep, err := store.Scrub(false)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scrub (inspect): %d stripes, %d at risk, %d unrecoverable",
		len(rep.Stripes), rep.AtRisk, rep.Unrecoverable)

	for _, id := range failed {
		devices[id].Replace()
	}
	rep, err = store.Scrub(true)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scrub (repair after replacement): %d blocks rewritten", rep.BlocksRepaired)

	rep, err = store.Scrub(false)
	if err != nil {
		log.Fatal(err)
	}
	missing := 0
	for _, h := range rep.Stripes {
		missing += len(h.Missing)
	}
	log.Printf("final state: %d stripes, %d blocks missing, %d unrecoverable",
		len(rep.Stripes), missing, rep.Unrecoverable)
	fmt.Println("scenario complete: all data survived", *failN, "device failures")
}
