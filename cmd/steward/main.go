// Command steward is the client for one or more stewarding sites: store
// and fetch objects, inspect health, trigger scrubs, and — with multiple
// sites — federated reads with block exchange (paper §5.3).
//
// Usage:
//
//	steward -sites http://a:8080 put name < file
//	steward -sites http://a:8080,http://b:8081 get name > file
//	steward -sites http://a:8080 health
//	steward -sites http://a:8080,http://b:8081 recover name > file
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("steward: ")

	sitesFlag := flag.String("sites", "http://localhost:8080", "comma-separated site base URLs")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		log.Fatal("usage: steward -sites <urls> {put|get|rm|ls|stat|health|scrub|recover} [name]")
	}

	var clients []*tornado.SiteClient
	for _, u := range strings.Split(*sitesFlag, ",") {
		clients = append(clients, tornado.NewSiteClient(strings.TrimSpace(u), nil))
	}
	single := clients[0]

	needName := func() string {
		if len(args) < 2 {
			log.Fatalf("%s needs an object name", args[0])
		}
		return args[1]
	}

	switch args[0] {
	case "put":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		name := needName()
		if len(clients) > 1 {
			r, err := tornado.NewReplicator(clients...)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.Put(name, data); err != nil {
				log.Fatal(err)
			}
			log.Printf("stored %q (%d bytes) at %d sites", name, len(data), len(clients))
		} else {
			if err := single.Put(name, data); err != nil {
				log.Fatal(err)
			}
			log.Printf("stored %q (%d bytes)", name, len(data))
		}
	case "get":
		name := needName()
		var data []byte
		var err error
		if len(clients) > 1 {
			var r *tornado.Replicator
			if r, err = tornado.NewReplicator(clients...); err == nil {
				data, err = r.Get(name)
			}
		} else {
			data, err = single.Get(name)
		}
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	case "recover":
		name := needName()
		r, err := tornado.NewReplicator(clients...)
		if err != nil {
			log.Fatal(err)
		}
		data, err := r.ExchangeRecover(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered %q (%d bytes) via block exchange", name, len(data))
		os.Stdout.Write(data)
	case "rm":
		name := needName()
		for _, c := range clients {
			if err := c.Delete(name); err != nil {
				log.Printf("delete: %v", err)
			}
		}
	case "ls":
		objs, err := single.List()
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range objs {
			fmt.Printf("%10d  %2d stripes  %s\n", o.Size, o.Stripes, o.Name)
		}
	case "stat":
		obj, err := single.Stat(needName())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes, %d stripes\n", obj.Name, obj.Size, obj.Stripes)
	case "health", "scrub":
		for i, c := range clients {
			var rep tornado.ScrubReport
			var err error
			if args[0] == "health" {
				rep, err = c.Health()
			} else {
				rep, err = c.Scrub()
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("site %d: %d stripes, %d at risk, %d unrecoverable, %d blocks repaired\n",
				i, len(rep.Stripes), rep.AtRisk, rep.Unrecoverable, rep.BlocksRepaired)
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
