// Command steward is the client for one or more stewarding sites: store
// and fetch objects, inspect health, trigger scrubs, and — with multiple
// sites — federated reads with block exchange and full steward passes
// (paper §5.3).
//
// Usage:
//
//	steward -sites http://a:8080 put name < file
//	steward -sites http://a:8080,http://b:8081 get name > file
//	steward -sites http://a:8080 health
//	steward -sites http://a:8080,http://b:8081 recover name > file
//	steward -sites http://a:8080,http://b:8081 pass
//
// Every request carries a per-request deadline (-timeout) and transient
// failures are retried with jittered backoff (-retries). Ctrl-C cancels
// the in-flight operation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("steward: ")

	var (
		sitesFlag = flag.String("sites", "http://localhost:8080", "comma-separated site base URLs")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request deadline")
		retries   = flag.Int("retries", 3, "attempts per request before a site is deemed unavailable")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		log.Fatal("usage: steward -sites <urls> {put|get|rm|ls|stat|health|scrub|recover|pass} [name]")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := tornado.SiteClientOptions{RequestTimeout: *timeout, MaxAttempts: *retries}
	var clients []*tornado.SiteClient
	for _, u := range strings.Split(*sitesFlag, ",") {
		clients = append(clients, tornado.NewSiteClientWithOptions(strings.TrimSpace(u), opts))
	}
	single := clients[0]

	needName := func() string {
		if len(args) < 2 {
			log.Fatalf("%s needs an object name", args[0])
		}
		return args[1]
	}

	switch args[0] {
	case "put":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		name := needName()
		if len(clients) > 1 {
			r, err := tornado.NewReplicator(clients...)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.PutCtx(ctx, name, data); err != nil {
				log.Fatal(err)
			}
			live := 0
			for _, st := range r.Health() {
				if st.Healthy {
					live++
				}
			}
			log.Printf("stored %q (%d bytes) at %d/%d sites", name, len(data), live, len(clients))
		} else {
			if err := single.PutCtx(ctx, name, data); err != nil {
				log.Fatal(err)
			}
			log.Printf("stored %q (%d bytes)", name, len(data))
		}
	case "get":
		name := needName()
		var data []byte
		var err error
		if len(clients) > 1 {
			var r *tornado.Replicator
			if r, err = tornado.NewReplicator(clients...); err == nil {
				data, err = r.GetCtx(ctx, name)
			}
		} else {
			data, err = single.GetCtx(ctx, name)
		}
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
	case "recover":
		name := needName()
		r, err := tornado.NewReplicator(clients...)
		if err != nil {
			log.Fatal(err)
		}
		data, err := r.ExchangeRecoverCtx(ctx, name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered %q (%d bytes) via block exchange", name, len(data))
		os.Stdout.Write(data)
	case "pass":
		r, err := tornado.NewReplicator(clients...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := r.StewardPass(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range rep.Sites {
			state := "healthy"
			if !st.Healthy {
				state = fmt.Sprintf("DOWN (%s)", st.LastError)
			}
			fmt.Printf("site %d %s: %s\n", st.Site, st.URL, state)
		}
		fmt.Printf("steward pass: %d objects examined, %d restored, %d blocks repaired, %d unrecoverable, %d sites skipped\n",
			rep.ObjectsExamined, rep.ObjectsRestored, rep.BlocksRepaired,
			len(rep.Unrecoverable), len(rep.SkippedSites))
	case "rm":
		name := needName()
		for _, c := range clients {
			if err := c.DeleteCtx(ctx, name); err != nil {
				log.Printf("delete: %v", err)
			}
		}
	case "ls":
		objs, err := single.ListCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range objs {
			fmt.Printf("%10d  %2d stripes  %s\n", o.Size, o.Stripes, o.Name)
		}
	case "stat":
		obj, err := single.StatCtx(ctx, needName())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes, %d stripes\n", obj.Name, obj.Size, obj.Stripes)
	case "health", "scrub":
		for i, c := range clients {
			var rep tornado.ScrubReport
			var err error
			if args[0] == "health" {
				rep, err = c.HealthCtx(ctx)
			} else {
				rep, err = c.ScrubCtx(ctx)
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("site %d: %d stripes, %d at risk, %d unrecoverable, %d blocks repaired\n",
				i, len(rep.Stripes), rep.AtRisk, rep.Unrecoverable, rep.BlocksRepaired)
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
