// Command graphcheck vets an erasure graph before production use — the
// paper's closing recommendation: "a storage system using Tornado Codes
// where data loss must be avoided should use precompiled graphs ... or
// perform basic worst-case fault detection on new graphs before use".
//
// It validates the structure, scans for closed-set defects, runs the
// exhaustive worst-case search, optionally samples the failure profile,
// and can render the first failing pattern as SVG for inspection.
//
// Usage:
//
//	graphcheck -graph mygraph.graphml -maxk 4 -svg failure.svg
//	graphcheck -precompiled tornado96-1 -maxk 5 -profile
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphcheck: ")

	var (
		graphPath   = flag.String("graph", "", "GraphML graph to vet")
		precompiled = flag.String("precompiled", "", "vet a shipped certified graph by name")
		maxK        = flag.Int("maxk", 4, "exhaustive worst-case search bound")
		profileIt   = flag.Bool("profile", false, "also sample the failure profile and summary metrics")
		trials      = flag.Int64("trials", 20000, "profile trials per point")
		svgPath     = flag.String("svg", "", "render the first failing pattern (or the clean graph) as SVG")
	)
	flag.Parse()

	var g *tornado.Graph
	var err error
	switch {
	case *graphPath != "":
		g, err = tornado.LoadGraphML(*graphPath)
	case *precompiled != "":
		g, err = tornado.LoadPrecompiled(*precompiled)
	default:
		log.Fatal("need -graph or -precompiled")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph:    %v\n", g)

	if err := g.Validate(); err != nil {
		log.Fatalf("INVALID: %v", err)
	}
	fmt.Println("structure: valid")

	all, err := tornado.ScanAllDefects(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	var defects, upper []tornado.Defect // data-level findings reject; upper-level ones warn
	for _, d := range all {
		if d.Level == 0 {
			defects = append(defects, d)
		} else {
			upper = append(upper, d)
		}
	}
	if len(defects) == 0 {
		fmt.Println("defects:   none up to closed sets of size 3")
	} else {
		fmt.Printf("defects:   %d closed sets found — REJECT for production use\n", len(defects))
		for i, d := range defects {
			if i >= 5 {
				fmt.Printf("           … and %d more\n", len(defects)-5)
				break
			}
			fmt.Printf("           %v\n", d)
		}
	}
	if len(upper) > 0 {
		fmt.Printf("cascade:   %d closed sets in check levels (weak points, not standalone data loss)\n", len(upper))
		for i, d := range upper {
			if i >= 5 {
				fmt.Printf("           … and %d more\n", len(upper)-5)
				break
			}
			fmt.Printf("           %v\n", d)
		}
	}

	wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: *maxK})
	if err != nil {
		log.Fatal(err)
	}
	var highlight []int
	if wc.Found {
		last := wc.PerK[len(wc.PerK)-1]
		fmt.Printf("worst case: FIRST FAILURE at %d lost nodes (%d/%d patterns)\n",
			wc.FirstFailure, last.FailureCount, last.Tested)
		if len(last.Failures) > 0 {
			res := tornado.NewDecoder(g).Decode(last.Failures[0])
			highlight = append(highlight, last.Failures[0]...)
			fmt.Printf("            example: lose %v → unrecoverable data %v\n",
				last.Failures[0], res.UnrecoveredData)
		}
	} else {
		fmt.Printf("worst case: tolerates any %d simultaneous losses (%d patterns tested)\n", *maxK, wc.Tested)
	}

	if *profileIt {
		p, err := tornado.Profile(g, tornado.ProfileOptions{Trials: *trials, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		avg := p.AvgNodesToReconstruct()
		fmt.Printf("profile:   avg to reconstruct %.2f (%.2f), 50%% at %d nodes (overhead %.2f)\n",
			avg, avg/float64(g.Data), p.NodesForSuccessProbability(0.5), p.Overhead())
		fmt.Printf("           P(fail) at AFR 1%%: %.3g\n", tornado.SystemFailure(g.Total, 0.01, p.FailFraction))
	}

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tornado.WriteSVG(f, g, highlight); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("svg:       wrote %s\n", *svgPath)
	}

	if len(defects) > 0 || (wc.Found && wc.FirstFailure <= 2) {
		os.Exit(1)
	}
}
