package main

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tornado"
	"tornado/internal/archive"
	"tornado/internal/device"
	"tornado/internal/federation"
	"tornado/internal/fedstore"
	"tornado/internal/graph"
)

// fedReport is the BENCH_federation.json payload: the paper's §5.3
// federation experiment (Table 7) at report scale. It compares each
// certified graph's single-site first failure against the detected joint
// first failure of every pair and of the full triple under block exchange,
// then backs the analysis with a measured chaos-free disaster run — full
// wipe of one site in a live 3-site fedstore, cross-site repair through
// RepairSite — whose byte accounting must conserve exactly (-check).
type fedReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`

	// Sites are the single-site baselines from the shipped certificates.
	Sites []fedSiteRow `json:"sites"`
	// Joint holds the detected joint first failure for every pair and the
	// full triple. DetectedFirstFailure 0 means the search produced no
	// witness at all — evidence of complementarity, not of failure.
	Joint []fedJointRow `json:"joint"`

	Disaster fedDisaster `json:"disaster"`
}

// fedSiteRow is one certified graph standing alone.
type fedSiteRow struct {
	Graph        string `json:"graph"`
	FirstFailure int    `json:"first_failure"`
	CriticalSets int    `json:"critical_sets"`
}

// fedJointRow is one graph combination under joint block exchange.
type fedJointRow struct {
	Graphs []string `json:"graphs"`
	// DetectedFirstFailure is the total devices erased across all sites in
	// the smallest witnessed joint failure (the paper's "first failure
	// detected"); 0 when no witness was found.
	DetectedFirstFailure int `json:"detected_first_failure"`
	// BestSingleSite is the largest certified single-site first failure in
	// the combination — the baseline the federation must beat.
	BestSingleSite int `json:"best_single_site"`
	// SurvivesMirroredCriticalSets reports the §5.3 claim checked
	// directly: every certified critical set of every member graph, erased
	// identically at ALL sites at once, is jointly recoverable by
	// exchange even though it defeats its home site alone.
	SurvivesMirroredCriticalSets bool `json:"survives_mirrored_critical_sets"`
}

// fedDisaster is the measured disaster-recovery run: a live 3-site
// federation (one certified graph per site), one site's media wiped, the
// WAN repair path timed and metered.
type fedDisaster struct {
	Sites       int   `json:"sites"`
	Objects     int   `json:"objects"`
	BytesStored int64 `json:"bytes_stored"`
	Victim      int   `json:"victim"`

	// Cross-site traffic to restore the wiped site (framed bytes over the
	// archive block interface, billed to the federation repair cause).
	RepairBytesRead    int64 `json:"repair_bytes_read"`
	RepairBytesWritten int64 `json:"repair_bytes_written"`
	RepairBlocksRead   int   `json:"repair_blocks_read"`
	RepairBlocksWrit   int   `json:"repair_blocks_written"`
	// RepairBytesPerStoredByte is cross-site repair traffic per payload
	// byte the federation holds — the cost of one site loss.
	RepairBytesPerStoredByte float64 `json:"repair_bytes_per_stored_byte"`

	ShellsSynced     int `json:"shells_synced"`
	DirectImports    int `json:"direct_imports"`
	ExchangedStripes int `json:"exchanged_stripes"`

	RecoverySeconds float64 `json:"recovery_seconds"`

	// Residue after repair; both must be zero (-check).
	MissingAfter  int `json:"missing_after"`
	Unrecoverable int `json:"unrecoverable"`
	// Conservation: site federation meters minus the facade's own tally.
	// Both must be zero (-check) — every cross-site byte attributed.
	UnattributedReadBytes  int64 `json:"unattributed_read_bytes"`
	UnattributedWriteBytes int64 `json:"unattributed_write_bytes"`
}

// parseCertificate pulls the certified first failure and the critical-set
// erasure lists out of a shipped .cert record.
func parseCertificate(name string) (firstFailure int, sets [][]int, err error) {
	cert, err := tornado.PrecompiledCertificate(name)
	if err != nil {
		return 0, nil, err
	}
	for _, line := range strings.Split(cert, "\n") {
		if rest, ok := strings.CutPrefix(line, "first-failure:"); ok {
			firstFailure, err = strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return 0, nil, fmt.Errorf("bad first-failure in %s cert: %w", name, err)
			}
			continue
		}
		rest, ok := strings.CutPrefix(line, "critical-set:")
		if !ok {
			continue
		}
		rest = strings.Trim(strings.TrimSpace(rest), "[]")
		var set []int
		for _, fld := range strings.Fields(rest) {
			v, err := strconv.Atoi(fld)
			if err != nil {
				return 0, nil, fmt.Errorf("bad critical-set in %s cert: %w", name, err)
			}
			set = append(set, v)
		}
		sets = append(sets, set)
	}
	if firstFailure == 0 {
		return 0, nil, fmt.Errorf("no first-failure line in %s cert", name)
	}
	return firstFailure, sets, nil
}

// survivesMirrored checks the §5.3 exchange claim head on: every critical
// set of every member, erased identically at all sites, must be jointly
// recoverable.
func survivesMirrored(sys *federation.System, sites int, critical [][]federation.CriticalSet) bool {
	for _, sets := range critical {
		for _, cs := range sets {
			erased := make([][]int, sites)
			for i := range erased {
				erased[i] = cs.Erased
			}
			if !sys.JointRecoverable(erased) {
				return false
			}
		}
	}
	return true
}

// federationSection builds the federation report over the three shipped
// certified graphs. The caller applies the -check gates.
func federationSection() fedReport {
	rep := fedReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
	}
	names := []string{"tornado96-1", "tornado96-2", "tornado96-3"}
	graphs := make([]*graph.Graph, len(names))
	firstFailures := make([]int, len(names))
	critical := make([][]federation.CriticalSet, len(names))
	for i, name := range names {
		g, err := tornado.LoadPrecompiled(name)
		if err != nil {
			fatal(err)
		}
		ff, sets, err := parseCertificate(name)
		if err != nil {
			fatal(err)
		}
		graphs[i] = g
		firstFailures[i] = ff
		critical[i] = federation.CriticalSets(g, sets)
		rep.Sites = append(rep.Sites, fedSiteRow{Graph: name, FirstFailure: ff, CriticalSets: len(sets)})
	}

	// Every pair, then the full triple.
	combos := [][]int{{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	for _, combo := range combos {
		row := fedJointRow{}
		sites := make([]*graph.Graph, len(combo))
		crit := make([][]federation.CriticalSet, len(combo))
		for i, gi := range combo {
			row.Graphs = append(row.Graphs, names[gi])
			sites[i] = graphs[gi]
			crit[i] = critical[gi]
			if firstFailures[gi] > row.BestSingleSite {
				row.BestSingleSite = firstFailures[gi]
			}
		}
		sys, err := federation.NewSystem(sites...)
		if err != nil {
			fatal(err)
		}
		det, err := sys.DetectFirstFailure(crit, federation.SearchOptions{Seed: 2006, Restarts: 8})
		if err == nil {
			row.DetectedFirstFailure = det.TotalErased
		}
		row.SurvivesMirroredCriticalSets = survivesMirrored(sys, len(combo), crit)
		rep.Joint = append(rep.Joint, row)
	}

	rep.Disaster = disasterRun(names, graphs)
	return rep
}

// disasterRun wipes one site of a live 3-site federation and measures the
// WAN repair. Chaos-free and single-threaded: the numbers are exactly
// reproducible modulo wall time.
func disasterRun(names []string, graphs []*graph.Graph) fedDisaster {
	const blockSize = 64
	const objects = 8
	d := fedDisaster{Sites: len(graphs), Objects: objects}
	stores := make([]*archive.Store, len(graphs))
	arrays := make([]device.Array, len(graphs))
	for i, g := range graphs {
		arrays[i] = device.NewArray(g.Total)
		s, err := archive.New(g, arrays[i], archive.Config{BlockSize: blockSize})
		if err != nil {
			fatal(err)
		}
		stores[i] = s
	}
	f, err := fedstore.New(stores, fedstore.Config{})
	if err != nil {
		fatal(err)
	}
	capacity := f.Layout().DataNodes * blockSize
	for i := 0; i < objects; i++ {
		size := capacity/2 + i*capacity/3 + 7
		data := make([]byte, size)
		for j := range data {
			data[j] = byte((i*131 + j*17) % 256)
		}
		if err := f.Put(fmt.Sprintf("obj-%02d", i), data); err != nil {
			fatal(err)
		}
		d.BytesStored += int64(size)
	}

	// The disaster: every device at the victim site wiped to a blank
	// replacement; object metadata survives.
	d.Victim = 0
	for id := range arrays[d.Victim] {
		arrays[d.Victim][id].Fail()
		arrays[d.Victim][id].Replace()
	}

	start := time.Now()
	rep, err := f.RepairSite(d.Victim)
	if err != nil {
		fatal(err)
	}
	d.RecoverySeconds = time.Since(start).Seconds()
	d.RepairBytesRead = rep.Exchange.BytesRead
	d.RepairBytesWritten = rep.Exchange.BytesWritten
	d.RepairBlocksRead = rep.Exchange.BlocksRead
	d.RepairBlocksWrit = rep.Exchange.BlocksWritten
	if d.BytesStored > 0 {
		d.RepairBytesPerStoredByte = float64(d.RepairBytesRead+d.RepairBytesWritten) / float64(d.BytesStored)
	}
	d.ShellsSynced = rep.ShellsSynced
	d.DirectImports = rep.DirectImports
	d.ExchangedStripes = rep.ExchangedStripes
	d.MissingAfter = rep.MissingAfter
	d.Unrecoverable = rep.Unrecoverable

	facade, meters := f.ExchangeTotals(), f.SiteFederationTotals()
	d.UnattributedReadBytes = meters.BytesRead - facade.BytesRead
	d.UnattributedWriteBytes = meters.BytesWritten - facade.BytesWritten
	return d
}
