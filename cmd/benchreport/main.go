// Command benchreport measures the certification-scan hot path and writes a
// machine-readable BENCH_decode.json: ns/pattern, patterns/sec, and
// allocs/op for the legacy full-reset Decoder scan (the "before"), the CSR
// kernel's one-shot path, and the incremental revolving-door kernel scan
// that sim.ScanRangeCtx now runs (the "after"), plus the end-to-end
// ScanRangeCtx throughput and the bit-sliced 64-lane scan
// (sliced_scan_range, sliced_eval_word). Five before/after ratios are
// reported: scan_speedup (the end-to-end exhaustive-scan workload),
// kernel_scan_speedup (the per-pattern inner loop alone),
// recoverable_k5_speedup (one k=5 recoverability query, one-shot Decoder
// versus the kernel in scan order), sliced_scan_speedup (pre-kernel
// Decoder scan versus the sliced scan, gated >= 8x in -check), and
// sliced_vs_scalar_scan (scalar kernel scan versus the sliced scan,
// gated >= 2.5x in -check).
//
// It also measures the closed-set defect scan (DESIGN.md "Defect kernels")
// and writes BENCH_defect.json: the map-per-subset ReferenceScan (the
// "before"), the bitmask-kernel ScanDataLevel (the "after"), and the
// steady-state revolving-door kernel loop, with defect_scan_speedup as the
// before/after ratio of a full maxSize-4 data-level scan.
//
// Usage:
//
//	benchreport [-o BENCH_decode.json] [-defect-o BENCH_defect.json] [-check]
//
// -check exits nonzero when a steady-state kernel benchmark allocates,
// which is how CI guards the zero-allocation invariant on both reports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"tornado/internal/combin"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/defect"
	"tornado/internal/graph"
	"tornado/internal/sim"
)

const scanK = 5 // the paper's deepest routinely-certified cardinality

// result is one benchmark row of the report.
type result struct {
	Name           string  `json:"name"`
	NsPerPattern   float64 `json:"ns_per_pattern"`
	PatternsPerSec float64 `json:"patterns_per_sec"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Iterations     int     `json:"iterations"`
	// SteadyState marks benchmarks whose allocs/op must be zero (-check).
	SteadyState bool `json:"steady_state"`
}

type report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	Graph         string   `json:"graph"`
	Nodes         int      `json:"nodes"`
	DataNodes     int      `json:"data_nodes"`
	ScanK         int      `json:"scan_k"`
	Benchmarks    []result `json:"benchmarks"`
	// ScanSpeedup is decoder_scan_range ns/pattern divided by
	// sim_scan_range ns/pattern — the end-to-end before/after of the
	// exhaustive-certification hot path, including enumeration,
	// cancellation checks, and metrics flushes on both sides.
	ScanSpeedup float64 `json:"scan_speedup"`
	// KernelScanSpeedup is decoder_lex_scan / kernel_gray_scan — the
	// per-pattern inner loop alone: full Decoder evaluation in
	// lexicographic order versus one revolving-door swap plus one
	// incremental Eval.
	KernelScanSpeedup float64 `json:"kernel_scan_speedup"`
	// RecoverableK5Speedup is decoder_oneshot_k5 / kernel_gray_scan —
	// what one k=5 recoverability query costs before and after: the
	// BenchmarkRecoverableK5-class baseline (stateful Decoder, full
	// erase + peel + reset per independent query) against the same query
	// answered by the incremental kernel in scan order, where the erasure
	// set is reached by a one-swap delta instead of built from scratch.
	RecoverableK5Speedup float64 `json:"recoverable_k5_speedup"`
	// SlicedScanSpeedup is decoder_scan_range / sliced_scan_range — the
	// end-to-end exhaustive scan before/after with the bit-sliced 64-lane
	// kernel and certificate pruning standing in for the scalar kernel.
	// CI gates this at >= 8x.
	SlicedScanSpeedup float64 `json:"sliced_scan_speedup"`
	// SlicedVsScalarScan is sim_scan_range / sliced_scan_range — the
	// sliced kernel against the already-optimized incremental scalar
	// kernel scan, both end to end. CI gates this at >= 2.5x.
	SlicedVsScalarScan float64 `json:"sliced_vs_scalar_scan"`
}

// defectScanMaxSize is the scan depth of the defect benchmarks — one past
// the generation gate's default, the depth certification sweeps use.
const defectScanMaxSize = 4

// defectReport is the BENCH_defect.json payload.
type defectReport struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	Graph         string   `json:"graph"`
	Nodes         int      `json:"nodes"`
	DataNodes     int      `json:"data_nodes"`
	MaxSize       int      `json:"max_size"`
	Benchmarks    []result `json:"benchmarks"`
	// DefectScanSpeedup is defect_reference_scan / defect_kernel_scan —
	// the before/after of one full data-level closed-set scan to
	// defectScanMaxSize: lexicographic map-per-subset oracle versus the
	// sharded revolving-door bitmask kernel.
	DefectScanSpeedup float64 `json:"defect_scan_speedup"`
}

func run(name string, patternsPerOp int64, steady bool, fn func(b *testing.B)) result {
	br := testing.Benchmark(fn)
	ns := float64(br.NsPerOp()) / float64(patternsPerOp)
	if ns <= 0 { // sub-ns ops round to zero; recompute from totals
		ns = float64(br.T.Nanoseconds()) / float64(int64(br.N)*patternsPerOp)
	}
	r := result{
		Name:           name,
		NsPerPattern:   ns,
		PatternsPerSec: 1e9 / ns,
		BytesPerOp:     br.AllocedBytesPerOp(),
		AllocsPerOp:    br.AllocsPerOp(),
		Iterations:     br.N,
		SteadyState:    steady,
	}
	fmt.Printf("%-24s %10.1f ns/pattern %14.0f patterns/sec %4d allocs/op\n",
		r.Name, r.NsPerPattern, r.PatternsPerSec, r.AllocsPerOp)
	return r
}

func main() {
	out := flag.String("o", "BENCH_decode.json", "report output path")
	defectOut := flag.String("defect-o", "BENCH_defect.json", "defect-scan report output path")
	serveOut := flag.String("serve-o", "BENCH_serve.json", "serve-layer report output path")
	repairOut := flag.String("repair-o", "BENCH_repair.json", "repair-economics report output path")
	fedOut := flag.String("federation-o", "BENCH_federation.json", "federation report output path")
	certifyOut := flag.String("certify-o", "BENCH_certify.json", "sampled-certification report output path")
	check := flag.Bool("check", false, "exit nonzero if a steady-state kernel benchmark allocates")
	flag.Parse()

	// The paper graph: a generated, screened 96-node Tornado cascade.
	g, _, err := core.Generate(core.DefaultParams(), rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		Graph:         "core.Generate(DefaultParams, PCG(2006,0))",
		Nodes:         g.Total,
		DataNodes:     g.Data,
		ScanK:         scanK,
	}

	rep.Benchmarks = append(rep.Benchmarks,
		run("decoder_oneshot_k5", 1, false, func(b *testing.B) { benchDecoderOneShot(b, g) }),
		run("kernel_oneshot_k5", 1, true, func(b *testing.B) { benchKernelOneShot(b, g) }),
		run("decoder_lex_scan", 1, false, func(b *testing.B) { benchDecoderLexScan(b, g) }),
		run("kernel_gray_scan", 1, true, func(b *testing.B) { benchKernelGrayScan(b, g) }),
		run("decoder_scan_range", scanRangePatterns, false, func(b *testing.B) { benchDecoderScanRange(b, g) }),
		run("sim_scan_range", scanRangePatterns, false, func(b *testing.B) { benchScanRange(b, g) }),
		run("sliced_scan_range", scanRangePatterns, false, func(b *testing.B) { benchSlicedScanRange(b, g) }),
		run("sliced_eval_word", decode.Lanes, true, func(b *testing.B) { benchSlicedEvalWord(b, g) }),
	)

	ns := map[string]float64{}
	for _, r := range rep.Benchmarks {
		ns[r.Name] = r.NsPerPattern
	}
	rep.ScanSpeedup = ns["decoder_scan_range"] / ns["sim_scan_range"]
	rep.KernelScanSpeedup = ns["decoder_lex_scan"] / ns["kernel_gray_scan"]
	rep.RecoverableK5Speedup = ns["decoder_oneshot_k5"] / ns["kernel_gray_scan"]
	rep.SlicedScanSpeedup = ns["decoder_scan_range"] / ns["sliced_scan_range"]
	rep.SlicedVsScalarScan = ns["sim_scan_range"] / ns["sliced_scan_range"]
	fmt.Printf("scan speedup:           %6.2fx (pre-kernel scan range / sim.ScanRangeCtx, end to end)\n", rep.ScanSpeedup)
	fmt.Printf("kernel scan speedup:    %6.2fx (lex Decoder loop / revolving-door kernel loop)\n", rep.KernelScanSpeedup)
	fmt.Printf("RecoverableK5 speedup:  %6.2fx (one-shot Decoder query / kernel query in scan order)\n", rep.RecoverableK5Speedup)
	fmt.Printf("sliced scan speedup:    %6.2fx (pre-kernel scan range / sliced 64-lane scan, end to end)\n", rep.SlicedScanSpeedup)
	fmt.Printf("sliced vs scalar scan:  %6.2fx (scalar kernel scan range / sliced 64-lane scan)\n", rep.SlicedVsScalarScan)

	writeJSON(*out, rep)

	// The defect-scan report: one full data-level scan per op, so the
	// per-pattern figures divide by the subsets a maxSize-4 scan examines.
	drep := defectReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		Graph:         rep.Graph,
		Nodes:         g.Total,
		DataNodes:     g.Data,
		MaxSize:       defectScanMaxSize,
	}
	drep.Benchmarks = append(drep.Benchmarks,
		run("defect_reference_scan", defectScanSubsets(g), false, func(b *testing.B) { benchDefectReferenceScan(b, g) }),
		run("defect_kernel_scan", defectScanSubsets(g), false, func(b *testing.B) { benchDefectKernelScan(b, g) }),
		run("defect_kernel_loop", 1, true, func(b *testing.B) { benchDefectKernelLoop(b, g) }),
	)
	dns := map[string]float64{}
	for _, r := range drep.Benchmarks {
		dns[r.Name] = r.NsPerPattern
	}
	drep.DefectScanSpeedup = dns["defect_reference_scan"] / dns["defect_kernel_scan"]
	fmt.Printf("defect scan speedup:    %6.2fx (map-per-subset reference / bitmask kernel, maxSize %d)\n",
		drep.DefectScanSpeedup, defectScanMaxSize)
	writeJSON(*defectOut, drep)

	// The serve-layer report: the Zipf load generator over a chaos backend
	// with a concurrent scrub, plus the data-path steady-state benchmarks.
	srep := serveSection(g)
	writeJSON(*serveOut, srep)

	// The repair-economics report: the extended RAID comparison plus the
	// measured single-device-loss accounting run.
	rrep := repairSection(g)
	for _, row := range rrep.Systems {
		label := row.System
		if row.Placement != "" {
			label += "/" + row.Placement
		}
		fmt.Printf("repair: %-28s overhead %.2fx tolerance %d reads/loss %5.2f (remote %5.2f)\n",
			label, row.StorageOverhead, row.Tolerance, row.RepairReadsPerLoss, row.RemoteReadsPerLoss)
	}
	fmt.Printf("repair measured: %.2f surplus reads/loss, %.3f repair bytes/lost byte, unattributed %d read / %d written\n",
		rrep.Measured.RepairReadsPerLoss, rrep.Measured.RepairBytesPerLostByte,
		rrep.Measured.UnattributedReadBytes, rrep.Measured.UnattributedWriteBytes)
	writeJSON(*repairOut, rrep)

	// The federation report: §5.3 joint tolerance for every certified
	// graph combination, plus the measured 3-site disaster-recovery run.
	frep := federationSection()
	for _, row := range frep.Joint {
		fmt.Printf("federation: %-35s joint first-failure %2d (best single site %d, mirrored critical sets survive: %v)\n",
			strings.Join(row.Graphs, "+"), row.DetectedFirstFailure, row.BestSingleSite,
			row.SurvivesMirroredCriticalSets)
	}
	fmt.Printf("federation disaster: site %d wiped, %.0f KiB moved cross-site (%.2f bytes/stored byte) in %.3fs, residue missing=%d\n",
		frep.Disaster.Victim,
		float64(frep.Disaster.RepairBytesRead+frep.Disaster.RepairBytesWritten)/1024,
		frep.Disaster.RepairBytesPerStoredByte, frep.Disaster.RecoverySeconds, frep.Disaster.MissingAfter)
	writeJSON(*fedOut, frep)

	// The certify report: archival-scale sampled certification on a
	// streamed n=10,000 graph — throughput to the 1e-4 CI target, the
	// precision trajectory, the screening rate, and the sampler's fixed
	// per-block allocation profile.
	crep := certifySection()
	fmt.Printf("certify: n=%d k=%d, %d trials to CI half-width %.2e in %.2fs (%.0f patterns/sec, %.1f%% screened, graph streamed in %.0fms)\n",
		crep.Nodes, crep.K, crep.Trials, crep.CIHalfWidth, crep.CertifySeconds,
		crep.PatternsPerSec, 100*crep.ScreenRate, 1000*crep.GenerateSeconds)
	writeJSON(*certifyOut, crep)

	if *check {
		failed := false
		all := append(append([]result(nil), rep.Benchmarks...), drep.Benchmarks...)
		all = append(all, srep.Benchmarks...)
		for _, r := range all {
			if r.SteadyState && r.AllocsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "benchreport: %s allocates %d/op; steady-state kernel paths must be allocation-free\n",
					r.Name, r.AllocsPerOp)
				failed = true
			}
		}
		// Sliced-kernel throughput gates: the 64-lane scan must beat the
		// pre-kernel Decoder scan by >= 8x end to end and the incremental
		// scalar kernel scan by >= 2.5x. Generous margins below the
		// measured ~17x / ~3.5x keep the gate a regression tripwire, not a
		// machine-speed lottery.
		if rep.SlicedScanSpeedup < 8 {
			fmt.Fprintf(os.Stderr, "benchreport: sliced scan is %.2fx the pre-kernel Decoder scan, below the 8x floor\n",
				rep.SlicedScanSpeedup)
			failed = true
		}
		if rep.SlicedVsScalarScan < 2.5 {
			fmt.Fprintf(os.Stderr, "benchreport: sliced scan is %.2fx the scalar kernel scan, below the 2.5x floor\n",
				rep.SlicedVsScalarScan)
			failed = true
		}
		if srep.Corrupted != 0 {
			fmt.Fprintf(os.Stderr, "benchreport: serve load returned %d silently corrupt payloads; the archive invariant is bit-exact-or-error\n",
				srep.Corrupted)
			failed = true
		}
		if srep.StreamAllocsPerStripe > srep.StreamAllocBudgetPerStripe {
			fmt.Fprintf(os.Stderr, "benchreport: stream stripe loop allocates %.2f/stripe, over the backend-contract budget of %.0f (one key string per node + one caller-owned read copy per block); the archive layer must add no per-stripe allocation of its own\n",
				srep.StreamAllocsPerStripe, srep.StreamAllocBudgetPerStripe)
			failed = true
		}
		// Repair-economics gates: every backend byte the measured run moved
		// must be attributed (the conservation law), and the degree-aware
		// placement must actually reduce cross-group single-loss repair
		// traffic versus the identity layout on every certified graph.
		if rrep.Measured.UnattributedReadBytes != 0 || rrep.Measured.UnattributedWriteBytes != 0 {
			fmt.Fprintf(os.Stderr, "benchreport: repair accounting leaked %d read / %d written bytes unattributed; the meter must conserve exactly\n",
				rrep.Measured.UnattributedReadBytes, rrep.Measured.UnattributedWriteBytes)
			failed = true
		}
		identityRemote := map[string]float64{}
		for _, row := range rrep.Systems {
			if row.Placement == "identity" {
				identityRemote[row.System] = row.RemoteReadsPerLoss
			}
		}
		for _, row := range rrep.Systems {
			if row.Placement != "degree-aware" {
				continue
			}
			if row.RemoteReadsPerLoss >= identityRemote[row.System] {
				fmt.Fprintf(os.Stderr, "benchreport: degree-aware placement on %s reads %.2f remote blocks/loss, not below identity's %.2f; co-location regressed\n",
					row.System, row.RemoteReadsPerLoss, identityRemote[row.System])
				failed = true
			}
		}
		// Federation gates: every certified critical set, mirrored across
		// all sites, must survive joint exchange (zero data loss on the
		// certified complementary sets), the wiped site must come back
		// whole, and the cross-site byte accounting must conserve exactly
		// (zero unattributed federation bytes).
		for _, row := range frep.Joint {
			if !row.SurvivesMirroredCriticalSets {
				fmt.Fprintf(os.Stderr, "benchreport: federation %s lost data on a mirrored certified critical set; complementary exchange must recover all of them\n",
					strings.Join(row.Graphs, "+"))
				failed = true
			}
		}
		if frep.Disaster.MissingAfter != 0 || frep.Disaster.Unrecoverable != 0 {
			fmt.Fprintf(os.Stderr, "benchreport: federation disaster run left missing=%d unrecoverable=%d at the wiped site\n",
				frep.Disaster.MissingAfter, frep.Disaster.Unrecoverable)
			failed = true
		}
		if frep.Disaster.UnattributedReadBytes != 0 || frep.Disaster.UnattributedWriteBytes != 0 {
			fmt.Fprintf(os.Stderr, "benchreport: federation repair leaked %d read / %d written bytes unattributed; every cross-site byte must carry the federation cause\n",
				frep.Disaster.UnattributedReadBytes, frep.Disaster.UnattributedWriteBytes)
			failed = true
		}
		// Certify gates: the sampled certification must reach its CI target,
		// keep the structural screen effective, and the sampler hot loop must
		// not allocate per trial.
		if checkCertify(crep) {
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	}
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

// benchDecoderOneShot is the pre-kernel baseline: the stateful Decoder
// answering independent random k=5 patterns with a full erase + reset per
// pattern.
func benchDecoderOneShot(b *testing.B, g *graph.Graph) {
	rng := rand.New(rand.NewPCG(1, 2))
	d := decode.New(g)
	erased := make([]int, scanK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		d.Recoverable(erased)
	}
}

// benchKernelOneShot is the kernel on the same independent-pattern
// workload (the Monte Carlo access pattern).
func benchKernelOneShot(b *testing.B, g *graph.Graph) {
	rng := rand.New(rand.NewPCG(1, 2))
	kn := decode.NewKernel(decode.NewCSR(g))
	erased := make([]int, scanK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range erased {
			erased[j] = rng.IntN(g.Total)
		}
		kn.Recoverable(erased)
	}
}

// midRank returns the midpoint of the C(total, scanK) rank space. Both
// scan benchmarks start there: a window at rank 0 shares a low-index
// prefix across every pattern, which is unrepresentatively cheap for the
// full-reset decoder, while mid-space patterns have the spread of the
// scan's steady state.
func midRank(g *graph.Graph) int64 {
	total, ok := combin.BinomialInt64(g.Total, scanK)
	if !ok {
		return 0
	}
	return total / 2
}

// benchDecoderLexScan replicates the pre-kernel ScanRangeCtx inner loop:
// lexicographic enumeration, one full Decoder evaluation per pattern.
func benchDecoderLexScan(b *testing.B, g *graph.Graph) {
	d := decode.New(g)
	idx := make([]int, scanK)
	combin.Unrank(idx, g.Total, midRank(g))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx[0] < g.Data {
			d.Recoverable(idx)
		}
		combin.Next(idx, g.Total)
	}
}

// benchKernelGrayScan is the current ScanRangeCtx inner loop: one
// revolving-door swap plus one incremental Eval per pattern.
func benchKernelGrayScan(b *testing.B, g *graph.Graph) {
	kn := decode.NewKernel(decode.NewCSR(g))
	idx := make([]int, scanK)
	combin.GrayUnrank(idx, g.Total, midRank(g))
	for _, v := range idx {
		kn.EraseOne(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Eval()
		out, in, ok := combin.GrayNext(idx, g.Total)
		if ok {
			kn.Swap(out, in)
			continue
		}
		// Rank space exhausted (a long -benchtime can walk past the last
		// C(96,5) combination): wrap to rank 0.
		for _, v := range idx {
			kn.RestoreOne(v)
		}
		combin.GrayUnrank(idx, g.Total, 0)
		for _, v := range idx {
			kn.EraseOne(v)
		}
	}
}

// scanRangePatterns is the per-op pattern count of the end-to-end scan
// benchmarks.
const scanRangePatterns = 1 << 17

// benchDecoderScanRange replicates the pre-kernel sim.ScanRangeCtx end to
// end — lexicographic Unrank/Next enumeration, a full Decoder evaluation
// per pattern behind the all-check prune, modulo-based cancellation checks
// every 8192 patterns, and the same metrics flushes — over the same
// mid-space window benchScanRange measures. This is the "before" of the
// report's scan_speedup.
func benchDecoderScanRange(b *testing.B, g *graph.Graph) {
	ctx := context.Background()
	reg := sim.Metrics()
	tested := reg.Counter(sim.MetricCombinationsTested)
	found := reg.Counter(sim.MetricFailuresFound)
	d := decode.New(g)
	idx := make([]int, scanK)
	lo := midRank(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combin.Unrank(idx, g.Total, lo)
		var nTested, nFound, lastT, lastF int64
		for r := lo; r < lo+scanRangePatterns; r++ {
			if (r-lo)%8192 == 0 {
				if ctx.Err() != nil {
					b.Fatal(ctx.Err())
				}
				tested.Add(nTested - lastT)
				found.Add(nFound - lastF)
				lastT, lastF = nTested, nFound
			}
			nTested++
			if idx[0] < g.Data && !d.Recoverable(idx) {
				nFound++
			}
			combin.Next(idx, g.Total)
		}
		tested.Add(nTested - lastT)
		found.Add(nFound - lastF)
	}
}

// benchScanRange measures sim.ScanRangeCtx end to end — enumeration,
// kernel, cancellation checks, metrics flushes — over a mid-space rank
// window (see midRank).
func benchScanRange(b *testing.B, g *graph.Graph) {
	ctx := context.Background()
	lo := midRank(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ScanRangeCtx(ctx, g, scanK, lo, lo+scanRangePatterns, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlicedScanRange measures the bit-sliced scan end to end —
// revolving-door run decomposition, incremental suffix certificate,
// 64-lane batched evaluation of unresolved lanes — over the same
// mid-space rank window benchScanRange measures.
func benchSlicedScanRange(b *testing.B, g *graph.Graph) {
	ctx := context.Background()
	lo := midRank(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ScanRangeKernelCtx(ctx, g, scanK, lo, lo+scanRangePatterns, 16, sim.KernelSliced); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlicedEvalWord is the steady-state sliced fixpoint the -check
// alloc gate guards: one word of 64 distinct k=5 patterns (a shared
// 4-node suffix plus a sweeping smallest element — the scan's actual
// word shape) per op.
func benchSlicedEvalWord(b *testing.B, g *graph.Graph) {
	sk := decode.NewSlicedKernel(decode.NewCSR(g))
	suffix := []int{70, 75, 80, 85}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Reset()
		sk.SetActive(^uint64(0))
		for _, v := range suffix {
			sk.Erase(v, ^uint64(0))
		}
		for lane := 0; lane < decode.Lanes; lane++ {
			sk.Erase(lane, 1<<uint(lane))
		}
		if sk.Eval() == 0 {
			b.Fatal("benchmark word unexpectedly unrecoverable in every lane")
		}
	}
}

// defectScanSubsets is the candidate-subset count of one full data-level
// scan to defectScanMaxSize: sum of C(data, s) for s = 2..maxSize.
func defectScanSubsets(g *graph.Graph) int64 {
	var total int64
	for s := 2; s <= defectScanMaxSize; s++ {
		n, ok := combin.BinomialInt64(g.Data, s)
		if !ok {
			return 1
		}
		total += n
	}
	return total
}

// benchDefectReferenceScan is the pre-kernel defect scan: lexicographic
// enumeration, one count map per subset.
func benchDefectReferenceScan(b *testing.B, g *graph.Graph) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defect.ReferenceScan(g, defectScanMaxSize)
	}
}

// benchDefectKernelScan is the production defect scan end to end: table
// build, sharded revolving-door kernels, minimality filter.
func benchDefectKernelScan(b *testing.B, g *graph.Graph) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defect.ScanDataLevel(g, defectScanMaxSize)
	}
}

// benchDefectKernelLoop is the steady-state inner loop the -check alloc
// gate guards: a prebuilt Table and Kernel driven one revolving-door swap
// plus one Closed read per subset.
func benchDefectKernelLoop(b *testing.B, g *graph.Graph) {
	t := defect.NewDataTable(g)
	kn := defect.NewKernel(t)
	idx := make([]int, 3)
	combin.First(idx, t.LeftCount)
	for _, l := range idx {
		kn.Add(l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Closed()
		out, in, ok := combin.GrayNext(idx, t.LeftCount)
		if ok {
			kn.Swap(out, in)
			continue
		}
		// Subset space exhausted: wrap to the first combination.
		for _, l := range idx {
			kn.Remove(l)
		}
		combin.First(idx, t.LeftCount)
		for _, l := range idx {
			kn.Add(l)
		}
	}
}
