package main

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/codec"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/obs"
	"tornado/internal/serve"
	"tornado/internal/workload"
)

// serveReport is the BENCH_serve.json payload: the serving layer measured
// under the Zipf load generator with a chaos backend and a concurrent
// repair scrub underneath, plus the data-path steady-state benchmarks the
// -check gate guards.
type serveReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	Graph         string `json:"graph"`
	Nodes         int    `json:"nodes"`
	DataNodes     int    `json:"data_nodes"`

	// Load-generator shape.
	Workers      int     `json:"workers"`
	Objects      int     `json:"objects"`
	ObjectSize   int     `json:"object_size"`
	Ops          int     `json:"ops"`
	ReadFraction float64 `json:"read_fraction"`
	ZipfS        float64 `json:"zipf_s"`

	// Load-generator results. Corrupted is the bit-exact-or-error
	// invariant under chaos + concurrent scrub: it must be zero (-check).
	OpsPerSec    float64 `json:"ops_per_sec"`
	Gets         int     `json:"gets"`
	Puts         int     `json:"puts"`
	Errors       int     `json:"errors"`
	Corrupted    int     `json:"corrupted"`
	BytesRead    int64   `json:"bytes_read"`
	BytesWritten int64   `json:"bytes_written"`
	RepairBytes  int64   `json:"repair_bytes"` // bytes moved by read-repair
	GetP50Ns     int64   `json:"get_p50_ns"`
	GetP99Ns     int64   `json:"get_p99_ns"`
	GetP999Ns    int64   `json:"get_p999_ns"`
	PutP50Ns     int64   `json:"put_p50_ns"`
	PutP99Ns     int64   `json:"put_p99_ns"`
	PutP999Ns    int64   `json:"put_p999_ns"`

	Benchmarks []result `json:"benchmarks"`
	// StreamStripes is the object length (in stripes) of the stream loop
	// benchmark; StreamAllocsPerStripe is its allocs/op divided by that.
	// The Backend contract makes one per-stripe allocation class
	// irreducible: Read hands back a caller-owned copy per block (the
	// device owns its buffer), so a healthy stripe costs one copy per
	// data node. Keys cost nothing — the []byte-key contract lets the
	// store rewrite one reused buffer per stripe and backends look up via
	// m[string(k)], which the compiler keeps allocation-free.
	// StreamAllocBudgetPerStripe is that contract floor (data nodes) plus
	// a small amortized slack, and -check fails when the measured figure
	// exceeds it, which catches any archive-layer work (planning, decode,
	// framing, key building) re-growing per-stripe allocations. History:
	// the planner regression this gate was built against measured 869
	// allocs/stripe; string keys cost 2×nodes ≈ 192; the []byte-key
	// contract landed at ~49 on the 96-node graph.
	StreamStripes              int     `json:"stream_stripes"`
	StreamAllocsPerStripe      float64 `json:"stream_allocs_per_stripe"`
	StreamAllocBudgetPerStripe float64 `json:"stream_alloc_budget_per_stripe"`
}

// serveSection measures the serving layer and returns its report. The
// caller applies the -check gates.
func serveSection(g *graph.Graph) serveReport {
	rep := serveReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		Graph:         "core.Generate(DefaultParams, PCG(2006,0))",
		Nodes:         g.Total,
		DataNodes:     g.Data,
		Workers:       8,
		Objects:       32,
		ObjectSize:    8192,
		Ops:           600,
		ReadFraction:  0.9,
		ZipfS:         1.1,
	}

	// The measured stack: chaos-injected backend, one store, the serving
	// layer with its cache, and a repair scrub running concurrently — the
	// archival steady state the paper's stewarding system lives in.
	reg := obs.NewRegistry()
	inj := chaos.Wrap(archive.NewArrayBackend(device.NewArray(g.Total)), chaos.Config{
		Seed:            2006,
		BitFlipRate:     0.001,
		ReadCorruptRate: 0.001,
		ReadErrRate:     0.004,
		WriteErrRate:    0.002,
		Metrics:         reg,
	})
	st, err := archive.NewWithBackend(g, inj, archive.Config{BlockSize: 64, Metrics: reg})
	if err != nil {
		fatal(err)
	}
	svc, err := serve.New([]*archive.Store{st}, serve.Config{CacheBytes: 1 << 20})
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	scrubCtx, stopScrub := context.WithCancel(ctx)
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		for scrubCtx.Err() == nil {
			_, _ = st.ScrubCtx(scrubCtx, true)
		}
	}()
	res, err := workload.RunLoad(ctx, svc, workload.LoadSpec{
		Tenants:      []string{"bench-a", "bench-b"},
		Objects:      rep.Objects,
		ObjectSize:   rep.ObjectSize,
		Ops:          rep.Ops,
		Workers:      rep.Workers,
		ReadFraction: rep.ReadFraction,
		ZipfS:        rep.ZipfS,
		Seed:         2006,
	})
	stopScrub()
	<-scrubDone
	if err != nil {
		fatal(err)
	}

	rep.OpsPerSec = res.OpsPerSec
	rep.Gets, rep.Puts = res.Gets, res.Puts
	rep.Errors, rep.Corrupted = res.Errors, res.Corrupted
	rep.BytesRead, rep.BytesWritten = res.BytesRead, res.BytesWritten
	rep.RepairBytes = res.RepairBytes
	rep.GetP50Ns, rep.GetP99Ns, rep.GetP999Ns = int64(res.GetP50), int64(res.GetP99), int64(res.GetP999)
	rep.PutP50Ns, rep.PutP99Ns, rep.PutP999Ns = int64(res.PutP50), int64(res.PutP99), int64(res.PutP999)
	fmt.Printf("serve load: %.0f ops/sec, get p50/p99/p999 %v/%v/%v, %d errors, %d corrupted, %d repair bytes\n",
		res.OpsPerSec, res.GetP50, res.GetP99, res.GetP999, res.Errors, res.Corrupted, res.RepairBytes)

	// Data-path steady-state benchmarks.
	const streamStripes = 64
	rep.StreamStripes = streamStripes
	rep.Benchmarks = append(rep.Benchmarks,
		run("encode_hot_loop", 1, true, func(b *testing.B) { benchEncodeHotLoop(b, g) }),
		run("stream_get_loop", streamStripes, false, func(b *testing.B) { benchStreamGetLoop(b, g, streamStripes) }),
	)
	rep.StreamAllocBudgetPerStripe = float64(g.Data + 12)
	for _, r := range rep.Benchmarks {
		if r.Name == "stream_get_loop" {
			rep.StreamAllocsPerStripe = float64(r.AllocsPerOp) / float64(streamStripes)
		}
	}
	fmt.Printf("stream stripe loop: %.3f allocs/stripe over a %d-stripe object (backend-contract budget %.0f)\n",
		rep.StreamAllocsPerStripe, streamStripes, rep.StreamAllocBudgetPerStripe)
	return rep
}

// benchEncodeHotLoop is the arena Encoder on a full stripe — the ingest
// hot loop. Steady state must not allocate (-check).
func benchEncodeHotLoop(b *testing.B, g *graph.Graph) {
	c, err := codec.New(g, 64)
	if err != nil {
		b.Fatal(err)
	}
	enc := c.NewEncoder()
	payload := make([]byte, c.Capacity())
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	if _, err := enc.Encode(payload); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStreamGetLoop reads one multi-stripe object per op through the
// sequential GetStream path into io.Discard. ns divides per stripe; the
// allocs/op stay whole-call so the report can prove they do not scale with
// the stripe count.
func benchStreamGetLoop(b *testing.B, g *graph.Graph, stripes int) {
	st, err := archive.New(g, device.NewArray(g.Total), archive.Config{BlockSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, stripes*st.Layout().StripeCapacity)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	ctx := context.Background()
	if err := st.Put("bench", payload); err != nil {
		b.Fatal(err)
	}
	if _, _, err := st.GetStream(ctx, "bench", io.Discard, archive.WithParallelism(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.GetStream(ctx, "bench", io.Discard, archive.WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
