package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tornado"
	"tornado/internal/archive"
	"tornado/internal/device"
	"tornado/internal/graph"
	"tornado/internal/placement"
	"tornado/internal/raid"
	"tornado/internal/repairbw"
)

// repairReport is the BENCH_repair.json payload: the repair-economics
// section. It extends the paper's 96-drive RAID comparison (Table 5) with
// a repair-bandwidth axis — blocks read per single loss under the
// placement cost model — alongside storage overhead and loss tolerance,
// and backs the model with a measured single-device-loss run whose
// byte-level accounting must conserve exactly (-check).
type repairReport struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GroupSize     int    `json:"group_size"`

	// Systems is the extended RAID comparison: the three certified
	// tornado96 graphs (under both placements) and the paper's baselines.
	Systems []repairSystemRow `json:"systems"`

	Measured repairMeasured `json:"measured"`
}

// repairSystemRow is one line of the repair-bandwidth / storage-overhead /
// reliability table.
type repairSystemRow struct {
	System    string `json:"system"`
	Placement string `json:"placement,omitempty"`
	Drives    int    `json:"drives"`
	Data      int    `json:"data_drives"`
	// StorageOverhead is raw drives per usable drive (2.0 = 100% overhead).
	StorageOverhead float64 `json:"storage_overhead"`
	// Tolerance is the guaranteed loss count: the largest k with zero
	// data-loss probability (certified first-failure minus one for the
	// tornado graphs, analytic for the RAID baselines).
	Tolerance int `json:"tolerance"`
	// RepairReadsPerLoss is blocks read to rebuild one lost block,
	// averaged over every possible single loss (repair bytes per lost
	// byte, in block-size units).
	RepairReadsPerLoss float64 `json:"repair_reads_per_loss"`
	// RemoteReadsPerLoss is the subset served from outside the lost
	// block's device group — the cross-shelf repair traffic placement
	// tries to minimize. Zero for the RAID baselines, whose groups are
	// their LUNs.
	RemoteReadsPerLoss float64 `json:"remote_reads_per_loss"`
	MaxRepairReads     int     `json:"max_repair_reads"`
}

// repairMeasured is the measured half: a single-device loss driven through
// the real store with a byte-counting shim under it, so the repair meter's
// attribution can be checked against ground truth.
type repairMeasured struct {
	Objects     int   `json:"objects"`
	StripeReads int   `json:"stripe_reads"` // degraded stripe decodes
	FrameSize   int   `json:"frame_size"`
	LostBytes   int64 `json:"lost_bytes"` // bytes on the failed device

	// Degraded-read amplification: surplus blocks/bytes the failed device
	// cost each stripe decode beyond the information-theoretic floor.
	DegradedSurplusBlocks  int64   `json:"degraded_surplus_blocks"`
	DegradedSurplusBytes   int64   `json:"degraded_surplus_bytes"`
	RepairReadsPerLoss     float64 `json:"repair_reads_per_loss"`
	RepairBytesPerLostByte float64 `json:"repair_bytes_per_lost_byte"`

	// Scrub rebuild of the replaced device.
	ScrubReadBytes    int64 `json:"scrub_read_bytes"`
	ScrubWrittenBytes int64 `json:"scrub_written_bytes"`
	BlocksRebuilt     int   `json:"blocks_rebuilt"`

	// Conservation: backend bytes not explained by the decode floor plus
	// the meter's attribution. Both must be zero (-check).
	UnattributedReadBytes  int64 `json:"unattributed_read_bytes"`
	UnattributedWriteBytes int64 `json:"unattributed_write_bytes"`
}

// meterShim counts every byte that actually crosses into the backend on
// successful operations — the ground truth the repair meter conserves
// against (same construction as the chaos conservation test).
type meterShim struct {
	archive.Backend
	readOps, writeOps     int64
	readBytes, writeBytes int64
}

func (m *meterShim) Read(ctx context.Context, node int, key []byte) ([]byte, error) {
	b, err := m.Backend.Read(ctx, node, key)
	if err == nil {
		m.readOps++
		m.readBytes += int64(len(b))
	}
	return b, err
}

func (m *meterShim) Write(ctx context.Context, node int, key []byte, data []byte) error {
	err := m.Backend.Write(ctx, node, key, data)
	if err == nil {
		m.writeOps++
		m.writeBytes += int64(len(data))
	}
	return err
}

// certTolerance parses "first-failure: N" out of a shipped certificate and
// returns N-1 — the largest loss count with zero certified failures.
func certTolerance(name string) (int, error) {
	cert, err := tornado.PrecompiledCertificate(name)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(cert, "\n") {
		if rest, ok := strings.CutPrefix(line, "first-failure:"); ok {
			ff, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return 0, fmt.Errorf("bad first-failure in %s cert: %w", name, err)
			}
			return ff - 1, nil
		}
	}
	return 0, fmt.Errorf("no first-failure line in %s cert", name)
}

// analyticTolerance finds the largest k with zero data-loss probability
// under the scheme's exact failure model.
func analyticTolerance(s raid.Scheme) int {
	for k := 1; k <= s.Drives; k++ {
		if s.FailGivenK(k) > 0 {
			return k - 1
		}
	}
	return s.Drives
}

// placementRows evaluates one certified graph under both placements.
func placementRows(name string, g *graph.Graph, groupSize int) []repairSystemRow {
	row := func(p placement.Placement) repairSystemRow {
		tol, err := certTolerance(name)
		if err != nil {
			fatal(err)
		}
		s := placement.SingleLossStats(g, p, groupSize)
		return repairSystemRow{
			System:             name,
			Placement:          p.Name(),
			Drives:             g.Total,
			Data:               g.Data,
			StorageOverhead:    float64(g.Total) / float64(g.Data),
			Tolerance:          tol,
			RepairReadsPerLoss: s.MeanRepairReads,
			RemoteReadsPerLoss: s.MeanRemoteReads,
			MaxRepairReads:     s.MaxRepairReads,
		}
	}
	return []repairSystemRow{
		row(placement.NewIdentity(g.Total)),
		row(placement.DegreeAware(g, groupSize)),
	}
}

// repairSection builds the repair-economics report. The caller applies the
// -check gates (zero unattributed bytes; degree-aware placement reduces
// cross-group single-loss reads).
func repairSection(g *graph.Graph) repairReport {
	rep := repairReport{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GroupSize:     placement.DefaultGroupSize,
	}

	for _, name := range []string{"tornado96-1", "tornado96-2", "tornado96-3"} {
		pg, err := tornado.LoadPrecompiled(name)
		if err != nil {
			fatal(err)
		}
		rep.Systems = append(rep.Systems, placementRows(name, pg, rep.GroupSize)...)
	}
	// The paper's baselines. Their single-loss repair reads are structural:
	// a mirror reads its twin (1); RAID5 over 12-disk LUNs XORs the other
	// 11; RAID6 rebuilds one loss from the 10 surviving data+P members.
	// Repair stays inside the LUN, so remote reads are zero by definition.
	baseline := map[string]float64{"Mirrored": 1, "RAID5": 11, "RAID6": 10}
	for _, s := range raid.Paper96Schemes() {
		reads, ok := baseline[s.Name]
		if !ok {
			continue // striping cannot repair; no row
		}
		rep.Systems = append(rep.Systems, repairSystemRow{
			System:             s.Name,
			Drives:             s.Drives,
			Data:               s.Data,
			StorageOverhead:    float64(s.Drives) / float64(s.Data),
			Tolerance:          analyticTolerance(s),
			RepairReadsPerLoss: reads,
			RemoteReadsPerLoss: 0,
			MaxRepairReads:     int(reads),
		})
	}

	rep.Measured = measureSingleLoss(g)
	return rep
}

// measureSingleLoss drives the real store through a single-device loss:
// degraded reads while the device is down, then a scrub rebuild after
// replacement, with every backend byte checked against the repair meter.
func measureSingleLoss(g *graph.Graph) repairMeasured {
	devs := device.NewArray(g.Total)
	shim := &meterShim{Backend: archive.NewArrayBackend(devs)}
	st, err := archive.NewWithBackend(g, shim, archive.Config{BlockSize: 64})
	if err != nil {
		fatal(err)
	}
	meter := st.RepairMeter()
	frameSize := int64(st.FrameSize())
	ctx := context.Background()
	m := repairMeasured{Objects: 24, FrameSize: int(frameSize)}

	capacity := st.Layout().StripeCapacity
	rng := rand.New(rand.NewPCG(2006, 17))
	names := make([]string, m.Objects)
	stripes := make([]int, m.Objects)
	for i := range names {
		names[i] = fmt.Sprintf("repair-%02d", i)
		size := 1 + rng.IntN(3*capacity)
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		if err := st.Put(names[i], data); err != nil {
			fatal(err)
		}
		stripes[i] = (size + capacity - 1) / capacity
	}

	// Lose one device (identity placement: device 0 serves data node 0)
	// and rot one frame per stripe on another: the loss alone costs no
	// extra reads — the planner swaps in a same-size recovery set — so the
	// bit rot is what makes the degraded machinery (checksum detection,
	// fallback planning, read-repair) actually move surplus bytes.
	const lost, rotted = 0, 1
	m.LostBytes = frameSize * int64(totalStripes(stripes))
	devs[lost].Fail()
	garbage := make([]byte, frameSize)
	for i, name := range names {
		for st := 0; st < stripes[i]; st++ {
			key := []byte(fmt.Sprintf("%s/%d/%d", name, st, rotted))
			if err := devs[rotted].Write(key, garbage); err != nil {
				fatal(err)
			}
		}
	}

	preBytes, preWrites := shim.readBytes, shim.writeBytes
	preDG := meter.Totals(repairbw.DegradedGet)
	preRR := meter.Totals(repairbw.ReadRepair)
	floor := 0
	for round := 0; round < 2; round++ {
		for i, name := range names {
			if _, _, err := st.GetCtx(ctx, name); err != nil {
				fatal(fmt.Errorf("degraded get %s: %w", name, err))
			}
			floor += stripes[i]
		}
	}
	dg := meter.Totals(repairbw.DegradedGet)
	rr := meter.Totals(repairbw.ReadRepair)
	m.StripeReads = floor
	m.DegradedSurplusBlocks = int64(dg.BlocksRead - preDG.BlocksRead)
	m.DegradedSurplusBytes = dg.BytesRead - preDG.BytesRead
	m.RepairReadsPerLoss = float64(m.DegradedSurplusBlocks) / float64(floor)
	m.RepairBytesPerLostByte = float64(m.DegradedSurplusBytes) / float64(int64(floor)*frameSize)
	m.UnattributedReadBytes = (shim.readBytes - preBytes) -
		int64(floor*g.Data)*frameSize - m.DegradedSurplusBytes
	m.UnattributedWriteBytes = (shim.writeBytes - preWrites) -
		(rr.BytesWritten - preRR.BytesWritten)

	// Replace the device and rebuild it with a repairing scrub.
	devs[lost].Replace()
	preScrub := meter.Totals(repairbw.Scrub)
	scrubReadsBefore, scrubWritesBefore := shim.readBytes, shim.writeBytes
	srep, err := st.ScrubCtx(ctx, true)
	if err != nil {
		fatal(err)
	}
	sc := meter.Totals(repairbw.Scrub)
	m.ScrubReadBytes = sc.BytesRead - preScrub.BytesRead
	m.ScrubWrittenBytes = sc.BytesWritten - preScrub.BytesWritten
	m.BlocksRebuilt = srep.BlocksRepaired
	m.UnattributedReadBytes += (shim.readBytes - scrubReadsBefore) - m.ScrubReadBytes
	m.UnattributedWriteBytes += (shim.writeBytes - scrubWritesBefore) - m.ScrubWrittenBytes
	return m
}

func totalStripes(stripes []int) int {
	n := 0
	for _, s := range stripes {
		n += s
	}
	return n
}
