package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/sim"
)

// The certify section measures the archival-scale sampled certification
// path (DESIGN.md "Certification at scale") on a streamed n=10,000 graph:
// end-to-end time to the default 1e-4 Wilson half-width target at k=5, the
// precision trajectory (CI width versus cumulative trials), the screening
// rejection rate, and the sampler's per-block allocation profile. The
// -check gates assert the half-width target is met, screening resolves the
// overwhelming majority of patterns, and the SampleBlock hot loop performs
// no per-trial allocations (allocs per block are identical across an 8x
// trial-count spread).

// certifyNodes is the graph size of the certify section: the archival
// scale the streaming generation path and stratified sampler target.
const certifyNodes = 10000

// certifyK is the certified cardinality, matching the scan sections.
const certifyK = scanK

// certifyBlockSmall and certifyBlockLarge are the two block trial counts
// of the fixed-allocation gate: if SampleBlock allocated per trial, the
// larger block would report more allocs/op.
const (
	certifyBlockSmall = 4096
	certifyBlockLarge = 32768
)

type certifyRound struct {
	Trials    int64   `json:"trials"`
	HalfWidth float64 `json:"ci_half_width"`
}

// certifyReport is the BENCH_certify.json payload.
type certifyReport struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GoVersion     string  `json:"go_version"`
	Graph         string  `json:"graph"`
	Nodes         int     `json:"nodes"`
	DataNodes     int     `json:"data_nodes"`
	K             int     `json:"k"`
	Epsilon       float64 `json:"epsilon"`
	// GenerateSeconds is the streamed construction + screening time.
	GenerateSeconds float64 `json:"generate_seconds"`
	// CertifySeconds is the wall time of the certification run.
	CertifySeconds float64 `json:"certify_seconds"`
	// Trials/Estimate/CIHalfWidth/ScreenRate summarize the run: total
	// patterns drawn, pooled failure estimate, achieved 95% Wilson CI
	// half-width, and the fraction resolved by structural proof alone.
	Trials      int64   `json:"trials"`
	Estimate    float64 `json:"estimate"`
	CIHalfWidth float64 `json:"ci_half_width"`
	ScreenRate  float64 `json:"screen_rate"`
	// PatternsPerSec is the certification throughput (Trials over wall
	// time, single process, all workers).
	PatternsPerSec float64 `json:"patterns_per_sec"`
	// Rounds is the precision trajectory: pooled CI half-width after each
	// doubling round of the stopping-rule schedule.
	Rounds     []certifyRound `json:"rounds"`
	Benchmarks []result       `json:"benchmarks"`
	// SamplerAllocDelta is allocs/op of the large block minus the small
	// one. Zero means SampleBlock's allocations are a per-call constant —
	// the hot loop itself allocates nothing per trial. CI gates this at 0.
	SamplerAllocDelta int64 `json:"sampler_alloc_delta"`
}

func certifySection() certifyReport {
	p := core.DefaultParams()
	p.TotalNodes = certifyNodes
	genStart := time.Now()
	g, _, err := core.Generate(p, rand.New(rand.NewPCG(2006, 0)))
	if err != nil {
		panic("benchreport: generating certify graph: " + err.Error())
	}
	genElapsed := time.Since(genStart)

	crep := certifyReport{
		GeneratedUnix:   time.Now().Unix(),
		GoVersion:       runtime.Version(),
		Graph:           "core.Generate(DefaultParams{TotalNodes: 10000}, PCG(2006,0))",
		Nodes:           g.Total,
		DataNodes:       g.Data,
		K:               certifyK,
		Epsilon:         sim.DefaultSampledEpsilon,
		GenerateSeconds: genElapsed.Seconds(),
	}

	certStart := time.Now()
	res, err := sim.SampleStratified(g, certifyK, sim.SampledOptions{Seed: 2006})
	if err != nil {
		panic("benchreport: sampled certification: " + err.Error())
	}
	elapsed := time.Since(certStart)
	crep.CertifySeconds = elapsed.Seconds()
	crep.Trials = res.Tally.Trials
	crep.Estimate = res.Estimate()
	crep.CIHalfWidth = res.HalfWidth()
	crep.ScreenRate = res.ScreenRate()
	crep.PatternsPerSec = float64(res.Tally.Trials) / elapsed.Seconds()
	for _, rd := range res.Rounds {
		crep.Rounds = append(crep.Rounds, certifyRound{Trials: rd.Trials, HalfWidth: rd.HalfWidth})
	}

	c := decode.NewCSR(g)
	crep.Benchmarks = append(crep.Benchmarks,
		run("sampled_block_4k", certifyBlockSmall, false, func(b *testing.B) {
			benchSampledBlock(b, c, certifyBlockSmall)
		}),
		run("sampled_block_32k", certifyBlockLarge, false, func(b *testing.B) {
			benchSampledBlock(b, c, certifyBlockLarge)
		}),
	)
	crep.SamplerAllocDelta = crep.Benchmarks[1].AllocsPerOp - crep.Benchmarks[0].AllocsPerOp
	return crep
}

// benchSampledBlock measures one deterministic sampled block per op on a
// warm sampler, witnesses disabled so the only allocations are
// SampleBlock's per-call constants (the RNG and the strata tally).
func benchSampledBlock(b *testing.B, c *decode.CSR, trials int64) {
	ctx := context.Background()
	sp := sim.NewStratifiedSampler(c)
	if _, err := sp.SampleBlock(ctx, certifyK, trials, 1, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.SampleBlock(ctx, certifyK, trials, 1, uint64(i%16), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// checkCertify applies the certify gates, reporting failures to stderr.
func checkCertify(crep certifyReport) bool {
	failed := false
	if crep.SamplerAllocDelta != 0 {
		fmt.Fprintf(os.Stderr, "benchreport: SampleBlock allocs grew by %d across an 8x trial-count spread (%d -> %d); the sampler hot loop must not allocate per trial\n",
			crep.SamplerAllocDelta, crep.Benchmarks[0].AllocsPerOp, crep.Benchmarks[1].AllocsPerOp)
		failed = true
	}
	if crep.CIHalfWidth > crep.Epsilon {
		fmt.Fprintf(os.Stderr, "benchreport: certification stopped at CI half-width %.3g, above the %.0e target\n",
			crep.CIHalfWidth, crep.Epsilon)
		failed = true
	}
	if crep.ScreenRate < 0.9 {
		fmt.Fprintf(os.Stderr, "benchreport: structural screening resolved only %.1f%% of sampled patterns at n=%d; the certificate screen has regressed\n",
			100*crep.ScreenRate, crep.Nodes)
		failed = true
	}
	return failed
}
