// Command chaos runs seeded fault-injection soak campaigns against the
// archive data path and enforces the archival invariants end to end: every
// Get returns bit-exact data or a definitive error (never silent
// corruption), every corrupt frame served by the injector is detected, and
// after the injector quiesces a repair scrub converges the store back to
// zero missing blocks.
//
// Usage:
//
//	chaos [flags]
//
//	  -seed N        first campaign seed (default 1)
//	  -campaigns N   number of campaigns; seeds are seed, seed+1, ... (default 10)
//	  -ops N         operations per campaign (default 400)
//	  -nodes N       tornado graph size (default 48)
//	  -maid          run over the power-managed MAID shelf backend
//	  -heavy         multiply all fault rates by -heavy-factor
//	  -heavy-factor  rate multiplier used with -heavy (default 4)
//	  -v             verbose per-op commentary
//
// The same seed always produces the identical fault schedule, operation
// mix, and report fingerprint. Exit status is non-zero if any campaign
// violates an invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")

	seed := flag.Uint64("seed", 1, "first campaign seed")
	campaigns := flag.Int("campaigns", 10, "number of campaigns to run")
	ops := flag.Int("ops", 400, "operations per campaign")
	nodes := flag.Int("nodes", 48, "tornado graph size (total nodes)")
	useMAID := flag.Bool("maid", false, "run over the power-managed MAID shelf backend")
	heavy := flag.Bool("heavy", false, "multiply all fault rates by -heavy-factor")
	heavyFactor := flag.Float64("heavy-factor", 4, "rate multiplier used with -heavy")
	verbose := flag.Bool("v", false, "verbose per-op commentary")
	flag.Parse()

	faults := tornado.DefaultSoakFaults()
	if *heavy {
		f := *heavyFactor
		faults.BitFlipRate *= f
		faults.ReadCorruptRate *= f
		faults.TruncateRate *= f
		faults.TornWriteRate *= f
		faults.ReadErrRate *= f
		faults.WriteErrRate *= f
		faults.NodeLossRate *= f
		faults.FlapRate *= f
	}

	violations := 0
	for i := 0; i < *campaigns; i++ {
		cfg := tornado.SoakConfig{
			Seed:       *seed + uint64(i),
			Ops:        *ops,
			TotalNodes: *nodes,
			MAID:       *useMAID,
			Faults:     faults,
		}
		if *verbose {
			cfg.Log = os.Stderr
		}
		rep, err := tornado.RunSoak(cfg)
		if err != nil {
			log.Fatalf("campaign seed %d: harness error: %v", cfg.Seed, err)
		}

		verdict := "ok"
		if err := rep.Check(); err != nil {
			if *heavy {
				// Past the design envelope convergence is forfeit; only the
				// detection invariants remain binding.
				switch {
				case rep.SilentCorruptions != 0, rep.FinalVerifyFailures != 0,
					rep.DetectedCorrupt != rep.ServedCorrupt:
					verdict = fmt.Sprintf("VIOLATION: %v", err)
					violations++
				default:
					verdict = fmt.Sprintf("degraded (allowed under -heavy): %v", err)
				}
			} else {
				verdict = fmt.Sprintf("VIOLATION: %v", err)
				violations++
			}
		}

		fmt.Printf("seed %-6d  puts=%d(+%d rejected) gets=%d dataloss=%d scrubs=%d "+
			"fails=%d/%d  served=%d detected=%d readrepair=%d quarantine=%d  "+
			"fingerprint=%.12s  %s\n",
			rep.Seed, rep.Puts, rep.RejectedPuts, rep.Gets, rep.DataLossGets,
			rep.Scrubs, rep.DeviceFails, rep.DeviceReplacements,
			rep.ServedCorrupt, rep.DetectedCorrupt, rep.ReadRepairs,
			rep.QuarantineEvents, rep.Fingerprint, verdict)
	}

	if violations > 0 {
		log.Fatalf("%d of %d campaigns violated an invariant", violations, *campaigns)
	}
	fmt.Printf("all %d campaigns upheld the invariants\n", *campaigns)
}
