// Command tornadogen generates Tornado Code graphs: construct from a seed,
// screen and repair structural defects, optionally run the feedback
// adjustment until a target cardinality is tolerated, and write the result
// as GraphML (and optionally Graphviz DOT).
//
// Node counts above 1024 switch to the streaming construction path:
// O(edges) stub-shuffle wiring with the hashed closed-pair screen, so
// archival-scale graphs (n = 10,000–100,000) generate in well under a
// second.
//
// Usage:
//
//	tornadogen -nodes 96 -seed 2006 -adjust 4 -out graph3.graphml -dot graph3.dot
//	tornadogen -nodes 10000 -seed 2006 -out big.graphml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tornadogen: ")

	var (
		nodes      = flag.Int("nodes", 96, "total node count (rate 1/2: half are data)")
		seed       = flag.Uint64("seed", 2006, "generation seed")
		heavyTailD = flag.Int("d", 16, "heavy-tail truncation D (D=16 gives avg data degree ~3.6)")
		adjustK    = flag.Int("adjust", 0, "run feedback adjustment until this cardinality is tolerated (0 = skip)")
		unscreened = flag.Bool("unscreened", false, "skip defect screening (paper's raw baseline)")
		out        = flag.String("out", "", "write GraphML to this path (default stdout)")
		dotPath    = flag.String("dot", "", "also write Graphviz DOT to this path")
	)
	flag.Parse()

	p := tornado.DefaultParams()
	p.TotalNodes = *nodes
	p.HeavyTailD = *heavyTailD

	var g *tornado.Graph
	var err error
	if *unscreened {
		g, err = tornado.GenerateUnscreened(p, *seed)
		if err == nil {
			log.Printf("generated unscreened %v", g)
			// The subset-scanning kernel is only affordable on small pair
			// rank spaces; at archival scale warn via the O(edges) hashed
			// closed-pair scan instead.
			var defects []tornado.Defect
			if *nodes <= 1024 {
				defects = tornado.ScanDefects(g, 3)
			} else {
				defects = tornado.ScanClosedPairs(g)
			}
			if len(defects) > 0 {
				log.Printf("warning: %d structural defects present (first: %v)", len(defects), defects[0])
			}
		}
	} else {
		var st tornado.GenStats
		g, st, err = tornado.Generate(p, *seed)
		if err == nil {
			log.Printf("generated %v (attempts %d, discarded %d, repairs %d)",
				g, st.Attempts, st.Discarded, st.Rewires)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	if *adjustK > 0 {
		improved, reports, err := tornado.Improve(g, *adjustK, tornado.AdjustOptions{}, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		g = improved
		for _, r := range reports {
			log.Printf("adjustment k=%d: %d -> %d failing sets in %d rounds (cleared=%v)",
				r.K, r.InitialFailures, r.FinalFailures, r.Rounds, r.Cleared)
		}
	}

	if *out == "" {
		if err := tornado.WriteGraphML(os.Stdout, g); err != nil {
			log.Fatal(err)
		}
	} else {
		if err := tornado.SaveGraphML(*out, g); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := tornado.WriteDOT(f, g, nil); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *dotPath)
	}
	fmt.Fprintf(os.Stderr, "%s\n", g)
}
