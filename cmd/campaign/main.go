// Command campaign runs the paper's bulk testing workloads — exhaustive
// worst-case searches, Monte Carlo reconstruction profiles (§3), and
// archival-scale sampled certifications — as durable, resumable campaigns:
// progress is journaled per shard, Ctrl-C is safe, and an unchanged graph
// is answered from the result cache.
//
// Usage:
//
//	campaign run -dir wc96 -kind worstcase -seed 2006 -maxk 5
//	campaign run -dir prof96 -kind profile -graph graph3.graphml -trials 100000
//	campaign run -dir cert10k -kind sampled -graph big.graphml -mink 5 -maxk 5 -epsilon 1e-4
//	campaign resume -dir wc96
//	campaign status -dir wc96
//
// Interrupt a run with Ctrl-C and `campaign resume` continues where it
// stopped, producing a result bit-identical to an uninterrupted run. With
// -cache, re-running an unchanged graph returns instantly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")

	if len(os.Args) < 2 {
		usage()
	}
	sub, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	var (
		dir       = fs.String("dir", "", "campaign directory (journal, manifest, result)")
		cacheDir  = fs.String("cache", "", "result cache directory (empty disables caching)")
		workers   = fs.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
		kind      = fs.String("kind", "worstcase", "workload: worstcase, profile, or sampled")
		graphPath = fs.String("graph", "", "GraphML graph to test (overrides -seed)")
		seed      = fs.Uint64("seed", 2006, "generate a fresh graph from this seed")
		nodes     = fs.Int("nodes", 0, "with -seed: total node count of the generated graph (default 96; large counts use the streaming path)")
		adjustK   = fs.Int("adjust", 0, "adjust the generated graph to tolerate this cardinality first")
		maxK      = fs.Int("maxk", 0, "largest erasure cardinality examined")
		keepGoing = fs.Bool("keepgoing", false, "worstcase: search all cardinalities past the first failure")
		failures  = fs.Int("failures", 0, "worstcase: failing sets recorded per cardinality")
		kernel    = fs.String("kernel", "", "worstcase: scan kernel, scalar (default) or sliced")
		trials    = fs.Int64("trials", 0, "profile/sampled: Monte Carlo trial budget per offline-node count")
		mcSeed    = fs.Uint64("mcseed", 2006, "profile/sampled: sampling seed")
		minK      = fs.Int("mink", 0, "profile/sampled: smallest erasure cardinality examined")
		epsilon   = fs.Float64("epsilon", 0, "sampled: stop once the 95% CI half-width reaches this (negative runs the full budget)")
		shardSize = fs.Int64("shardsize", 0, "combinations/trials per checkpoint shard")
		quiet     = fs.Bool("quiet", false, "suppress per-shard progress lines")
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		log.Fatal("-dir is required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := tornado.CampaignOptions{Workers: *workers, CacheDir: *cacheDir}
	if !*quiet {
		last := time.Now()
		opts.Progress = func(st tornado.CampaignStatus) {
			// Throttle to roughly one line per second; always print the last.
			if !st.Completed && time.Since(last) < time.Second {
				return
			}
			last = time.Now()
			pct := 0.0
			if st.WorkTotal > 0 {
				pct = 100 * float64(st.WorkDone) / float64(st.WorkTotal)
			}
			log.Printf("shards %d/%d, %d combinations (%.1f%%)",
				st.DoneShards, st.TotalShards, st.WorkDone, pct)
		}
	}

	switch sub {
	case "run":
		g := loadGraph(*graphPath, *seed, *nodes, *adjustK)
		spec := tornado.CampaignSpec{
			Kind:      tornado.CampaignKind(*kind),
			MaxK:      *maxK,
			ShardSize: *shardSize,
		}
		switch spec.Kind {
		case tornado.CampaignWorstCase:
			spec.MaxFailures = *failures
			spec.KeepGoing = *keepGoing
			spec.Kernel = *kernel
		case tornado.CampaignProfile:
			spec.Trials = *trials
			spec.Seed = *mcSeed
			spec.MinK = *minK
		case tornado.CampaignSampled:
			spec.Trials = *trials
			spec.Seed = *mcSeed
			spec.MinK = *minK
			spec.Epsilon = *epsilon
			spec.MaxFailures = *failures
		}
		start := time.Now()
		res, err := tornado.RunCampaignCtx(ctx, *dir, g, spec, opts)
		if err != nil {
			if ctx.Err() != nil {
				log.Fatalf("interrupted; completed shards are journaled — `campaign resume -dir %s` continues", *dir)
			}
			log.Fatal(err)
		}
		report(res, time.Since(start))

	case "resume":
		start := time.Now()
		res, err := tornado.ResumeCampaignCtx(ctx, *dir, opts)
		if err != nil {
			if ctx.Err() != nil {
				log.Fatalf("interrupted again; rerun `campaign resume -dir %s`", *dir)
			}
			log.Fatal(err)
		}
		report(res, time.Since(start))

	case "status":
		st, err := tornado.CampaignProgress(*dir)
		if err != nil {
			log.Fatal(err)
		}
		state := "in progress"
		if st.Completed {
			state = "completed"
		} else if st.DoneShards == 0 {
			state = "not started"
		}
		fmt.Printf("campaign:    %s (%s)\n", st.Dir, state)
		fmt.Printf("kind:        %s\n", st.Kind)
		fmt.Printf("fingerprint: %s\n", st.Fingerprint)
		fmt.Printf("shards:      %d/%d\n", st.DoneShards, st.TotalShards)
		fmt.Printf("work:        %d/%d combinations+trials\n", st.WorkDone, st.WorkTotal)

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: campaign {run|resume|status} -dir <dir> [flags]
  run     start a fresh campaign (see -kind, -graph/-seed, -maxk, -trials)
  resume  continue an interrupted campaign from its journal
  status  report shard progress without running anything`)
	os.Exit(2)
}

func loadGraph(path string, seed uint64, nodes, adjustK int) *tornado.Graph {
	var g *tornado.Graph
	var err error
	if path != "" {
		g, err = tornado.LoadGraphML(path)
	} else {
		p := tornado.DefaultParams()
		if nodes > 0 {
			p.TotalNodes = nodes
		}
		g, _, err = tornado.Generate(p, seed)
		if err == nil && adjustK > 0 {
			g, _, err = tornado.Improve(g, adjustK, tornado.AdjustOptions{}, seed+1)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("testing %v", g)
	return g
}

func report(res *tornado.CampaignResult, elapsed time.Duration) {
	if res.Cached {
		log.Printf("served from cache (fingerprint %.12s…)", res.Fingerprint)
	}
	switch {
	case res.WorstCase != nil:
		for _, kr := range res.WorstCase.PerK {
			fmt.Printf("k=%d: %d failures / %d combinations\n", kr.K, kr.FailureCount, kr.Tested)
		}
		if res.WorstCase.Found {
			fmt.Printf("worst case failure scenario: %d lost nodes\n", res.WorstCase.FirstFailure)
		} else {
			fmt.Printf("no failure found up to the examined cardinality\n")
		}
	case res.Profile != nil:
		p := res.Profile
		fmt.Printf("first observed failure: %d offline nodes\n", p.FirstObservedFailure())
		fmt.Printf("avg nodes to reconstruct: %.2f (%.2f)\n", p.AvgNodesToReconstruct(), p.AvgToReconstructRatio())
		fmt.Printf("50%% reconstruction overhead: %.3f\n", p.Overhead())
	case res.Sampled != nil:
		for _, sr := range res.Sampled {
			lo, hi := sr.Wilson()
			fmt.Printf("k=%d: P(fail) = %.3g, 95%% CI [%.3g, %.3g] over %d trials (%.1f%% screened, %d rounds)\n",
				sr.K, sr.Estimate(), lo, hi, sr.Tally.Trials, 100*sr.ScreenRate(), len(sr.Rounds))
		}
	}
	fmt.Printf("%d combinations+trials evaluated in %v\n", res.WorkDone, elapsed.Round(time.Millisecond))
}
