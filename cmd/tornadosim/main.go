// Command tornadosim measures a graph's reconstruction-failure profile:
// for each number of offline devices, the fraction of random failure
// patterns that lose data (paper §3's 962-million-case test suite, with a
// configurable budget). Output is CSV suitable for plotting Figures 3–6.
//
// Usage:
//
//	tornadosim -graph graph3.graphml -trials 100000 > profile.csv
//	tornadosim -seed 2006 -adjust 4 -trials 20000 -summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tornadosim: ")

	var (
		graphPath  = flag.String("graph", "", "GraphML graph to profile (overrides -seed)")
		seed       = flag.Uint64("seed", 2006, "generate a fresh 96-node graph from this seed")
		adjustK    = flag.Int("adjust", 0, "adjust the generated graph to tolerate this cardinality first")
		trials     = flag.Int64("trials", 20000, "Monte Carlo trials per offline-node count")
		exhaustive = flag.Int64("exhaustive", 100000, "enumerate exactly when C(n,k) is at most this")
		minK       = flag.Int("mink", 1, "smallest offline count")
		maxK       = flag.Int("maxk", 0, "largest offline count (0 = all)")
		simSeed    = flag.Uint64("simseed", 1, "sampling seed")
		summary    = flag.Bool("summary", false, "print summary metrics instead of CSV")
		overhead   = flag.Bool("overhead", false, "measure reconstruction overhead (min random-order retrievals) instead of the failure profile")
		lifetime   = flag.Bool("lifetime", false, "simulate system lifetimes (discrete-event MTTDL) instead of the failure profile")
		lambda     = flag.Float64("lambda", 0.1, "lifetime: per-device failure rate per year")
		mu         = flag.Float64("mu", 12, "lifetime: per-repairman rebuild rate per year")
		repairmen  = flag.Int("repairmen", 1, "lifetime: concurrent rebuilds (0 = no repair)")
	)
	flag.Parse()

	var g *tornado.Graph
	var err error
	if *graphPath != "" {
		g, err = tornado.LoadGraphML(*graphPath)
	} else {
		g, _, err = tornado.Generate(tornado.DefaultParams(), *seed)
		if err == nil && *adjustK > 0 {
			g, _, err = tornado.Improve(g, *adjustK, tornado.AdjustOptions{}, *seed+1)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("profiling %v", g)

	if *lifetime {
		start := time.Now()
		res, err := tornado.SimulateLifetime(g, tornado.LifetimeOptions{
			Lambda: *lambda, Mu: *mu, Repairmen: *repairmen,
			Runs: int(*trials), Seed: *simSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("simulated %d lifetimes in %v", res.Runs, time.Since(start).Round(time.Millisecond))
		fmt.Printf("mean time to data loss: %.4g years (%d runs, %d truncated)\n",
			res.MeanYears, res.Runs, res.Truncated)
		return
	}

	if *overhead {
		start := time.Now()
		res, err := tornado.MeasureOverhead(g, tornado.OverheadOptions{Trials: *trials, Seed: *simSeed})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("measured in %v", time.Since(start).Round(time.Millisecond))
		fmt.Printf("mean minimum retrievals: %.2f (overhead %.3f)\n", res.Mean(), res.MeanOverhead())
		fmt.Printf("median: %d  p99: %d\n", res.Quantile(0.5), res.Quantile(0.99))
		fmt.Println("retrievals,count")
		for v, c := range res.Counts.Counts {
			if c > 0 {
				fmt.Printf("%d,%d\n", v, c)
			}
		}
		return
	}

	start := time.Now()
	p, err := tornado.Profile(g, tornado.ProfileOptions{
		Trials:          *trials,
		ExhaustiveLimit: *exhaustive,
		MinK:            *minK,
		MaxK:            *maxK,
		Seed:            *simSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("profiled in %v", time.Since(start).Round(time.Millisecond))

	if *summary {
		fmt.Printf("graph:                    %s\n", g.Name)
		fmt.Printf("first observed failure:   %d offline nodes\n", p.FirstObservedFailure())
		avg := p.AvgNodesToReconstruct()
		fmt.Printf("avg nodes to reconstruct: %.2f (%.2f)\n", avg, avg/float64(g.Data))
		n50 := p.NodesForSuccessProbability(0.5)
		fmt.Printf("nodes for 50%% success:    %d (overhead %.2f)\n", n50, p.Overhead())
		pfail := tornado.SystemFailure(g.Total, 0.01, p.FailFraction)
		fmt.Printf("P(fail) at AFR 1%%:        %.4g\n", pfail)
		return
	}

	w := os.Stdout
	fmt.Fprintln(w, "offline,failures,trials,fraction,exact")
	for k := 0; k <= g.Total; k++ {
		prop := p.Fail[k]
		if prop.Trials == 0 {
			continue
		}
		fmt.Fprintf(w, "%d,%d,%d,%.9g,%v\n", k, prop.Hits, prop.Trials, prop.Estimate(), p.Exact[k])
	}
}
