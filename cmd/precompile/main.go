// Command precompile regenerates the certified graphs shipped with the
// library in precompiled/. The paper's conclusion recommends exactly this
// workflow: "a storage system using Tornado Codes where data loss must be
// avoided should use precompiled graphs and not random graphs".
//
// For each seed it runs the full pipeline — generate, screen/repair,
// feedback-adjust to the target cardinality, certify by exhaustive search —
// and writes the graph as GraphML plus a sidecar .cert file recording the
// certification.
//
// Usage:
//
//	precompile -adjust 4 -certify 5 -out ./precompiled
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precompile: ")

	var (
		out     = flag.String("out", "precompiled", "output directory")
		adjustK = flag.Int("adjust", 4, "feedback-adjust until this cardinality is tolerated")
		certify = flag.Int("certify", 5, "certify by exhaustive search through this cardinality")
	)
	flag.Parse()
	seeds := []uint64{2006, 2007, 2011}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, seed := range seeds {
		start := time.Now()
		g, _, err := tornado.Generate(tornado.DefaultParams(), seed)
		if err != nil {
			log.Fatal(err)
		}
		g, reports, err := tornado.Improve(g, *adjustK, tornado.AdjustOptions{}, seed+1)
		if err != nil {
			log.Fatal(err)
		}
		wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: *certify, KeepGoing: false})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("tornado96-%d", i+1)
		g.Name = name

		path := filepath.Join(*out, name+".graphml")
		if err := tornado.SaveGraphML(path, g); err != nil {
			log.Fatal(err)
		}
		cert := certText(seed, *adjustK, g, wc, len(reports))
		if err := os.WriteFile(filepath.Join(*out, name+".cert"), []byte(cert), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: %s (%v)", name, firstFailureString(wc, *certify), time.Since(start).Round(time.Second))
	}
}

func firstFailureString(wc tornado.WorstCaseResult, certify int) string {
	if !wc.Found {
		return fmt.Sprintf("tolerates any %d losses", certify)
	}
	last := wc.PerK[len(wc.PerK)-1]
	return fmt.Sprintf("first failure %d (%d/%d cases)", wc.FirstFailure, last.FailureCount, last.Tested)
}

func certText(seed uint64, adjustK int, g *tornado.Graph, wc tornado.WorstCaseResult, clearedCardinalities int) string {
	s := fmt.Sprintf("graph: %s\nseed: %d\nadjusted-to: %d\ncleared-cardinalities: %d\n",
		g.Name, seed, adjustK, clearedCardinalities)
	s += fmt.Sprintf("edges: %d\navg-data-degree: %.3f\n", g.EdgeCount(), g.AvgDataDegree())
	for _, kr := range wc.PerK {
		s += fmt.Sprintf("k=%d: %d failures / %d combinations\n", kr.K, kr.FailureCount, kr.Tested)
	}
	if wc.Found {
		s += fmt.Sprintf("first-failure: %d\n", wc.FirstFailure)
		last := wc.PerK[len(wc.PerK)-1]
		for _, f := range last.Failures {
			s += fmt.Sprintf("critical-set: %v\n", f)
		}
	} else {
		s += "first-failure: none-found\n"
	}
	return s
}
