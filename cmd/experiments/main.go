// Command experiments regenerates every table and figure of the paper's
// evaluation (§4–§5): Tables 1–7, the curve data behind Figures 3–6, and
// the Equation (1) simulator validation.
//
// Usage:
//
//	experiments                 # quick pass (minutes, preserves shape)
//	experiments -full           # paper-scale adjustment + k=5 certification
//	experiments -exp table5     # one experiment
//	experiments -csvdir ./fig   # also write figure curve CSVs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tornado/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		full   = flag.Bool("full", false, "paper-scale configuration (clear k=4, certify k=5, heavy sampling)")
		which  = flag.String("exp", "all", "experiment: all, table1..table7, eq1")
		trials = flag.Int64("trials", 0, "override Monte Carlo trials per profile point")
		csvdir = flag.String("csvdir", "", "write figure curve CSVs into this directory")
	)
	flag.Parse()

	cfg := exp.Quick()
	if *full {
		cfg = exp.Full()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}

	start := time.Now()
	log.Printf("preparing %d tornado graphs (adjust to k=%d, certify to k=%d, %d trials/point)",
		len(cfg.Seeds), cfg.AdjustK, cfg.CertifyK, cfg.Trials)
	var tornadoes []*exp.TornadoGraph
	for i := range cfg.Seeds {
		tg, err := exp.PrepareTornado(cfg, i)
		if err != nil {
			log.Fatal(err)
		}
		ff := "none found"
		if tg.FirstFailure > 0 {
			ff = fmt.Sprintf("%d (%d/%d cases)", tg.FirstFailure, tg.FailuresAtFF, tg.TestedAtFF)
		}
		log.Printf("%s ready: first failure %s", tg.Name, ff)
		tornadoes = append(tornadoes, tg)
	}

	want := func(name string) bool { return *which == "all" || *which == name }
	writeCSV := func(name string, systems []exp.System) {
		if *csvdir == "" {
			return
		}
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*csvdir, name+".csv")
		if err := os.WriteFile(path, []byte(exp.CurvesCSV(systems)), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}

	if want("table1") {
		text, systems := exp.Table1(cfg, tornadoes)
		fmt.Println(text)
		writeCSV("figure3", systems)
	}
	if want("table2") {
		text, systems, err := exp.Table2(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
		writeCSV("figure4", systems)
	}
	if want("table3") {
		text, systems, err := exp.Table3(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
		writeCSV("figure5", systems)
	}
	if want("table4") {
		text, systems, err := exp.Table4(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
		writeCSV("figure6", systems)
	}
	if want("table5") {
		text, _ := exp.Table5(cfg, tornadoes, 0.01)
		fmt.Println(text)
	}
	if want("table6") {
		text, _ := exp.Table6(tornadoes)
		fmt.Println(text)
	}
	if want("table7") {
		text, _, err := exp.Table7(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
	if want("eq1") {
		text, maxAbs, err := exp.Eq1Validation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
		fmt.Printf("max |simulated - theory| across k: %.3g\n\n", maxAbs)
	}
	if want("overhead") {
		text, _, err := exp.TableOverhead(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
	if want("mttdl") {
		text, _, err := exp.TableMTTDL(cfg, tornadoes, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
	if want("lec") {
		text, _, err := exp.TableLEC(cfg, tornadoes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}
	switch {
	case strings.HasPrefix(*which, "table"), *which == "all", *which == "eq1",
		*which == "overhead", *which == "mttdl", *which == "lec":
	default:
		log.Fatalf("unknown experiment %q", *which)
	}
	log.Printf("done in %v", time.Since(start).Round(time.Second))
}
