// Command worstcase runs the paper's exhaustive combinatorial search for a
// graph's worst-case failure scenario: every combination of k lost nodes,
// for k = 1 up to -maxk, against the peeling decoder (paper §3: "(96
// choose 1 lost block) through (96 choose 6)").
//
// Usage:
//
//	worstcase -graph graph3.graphml -maxk 5
//	worstcase -seed 2006 -adjust 4 -maxk 5 -keepgoing
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tornado"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worstcase: ")

	var (
		graphPath = flag.String("graph", "", "GraphML graph to test (overrides -seed)")
		seed      = flag.Uint64("seed", 2006, "generate a fresh 96-node graph from this seed")
		adjustK   = flag.Int("adjust", 0, "adjust the generated graph to tolerate this cardinality first")
		maxK      = flag.Int("maxk", 5, "largest erasure cardinality to search")
		keepGoing = flag.Bool("keepgoing", false, "search all cardinalities even after the first failure")
		failures  = flag.Int("failures", 16, "failing sets to print")
		kernel    = flag.String("kernel", "", "scan kernel: scalar (default) or sliced")
	)
	flag.Parse()

	var g *tornado.Graph
	var err error
	if *graphPath != "" {
		g, err = tornado.LoadGraphML(*graphPath)
	} else {
		g, _, err = tornado.Generate(tornado.DefaultParams(), *seed)
		if err == nil && *adjustK > 0 {
			g, _, err = tornado.Improve(g, *adjustK, tornado.AdjustOptions{}, *seed+1)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("testing %v", g)

	start := time.Now()
	res, err := tornado.WorstCase(g, tornado.WorstCaseOptions{
		MaxK: *maxK, KeepGoing: *keepGoing, MaxFailures: *failures,
		Kernel: tornado.ScanKernel(*kernel),
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	for _, kr := range res.PerK {
		fmt.Printf("k=%d: %d failures / %d combinations (%.3g)\n",
			kr.K, kr.FailureCount, kr.Tested, float64(kr.FailureCount)/float64(kr.Tested))
		for i, f := range kr.Failures {
			if i >= *failures {
				break
			}
			fmt.Printf("  failing set: %v\n", f)
		}
	}
	if res.Found {
		fmt.Printf("worst case failure scenario: %d lost nodes\n", res.FirstFailure)
	} else {
		fmt.Printf("no failure found up to %d lost nodes\n", *maxK)
	}
	fmt.Printf("%d combinations tested in %v (%.0f/s)\n",
		res.Tested, elapsed.Round(time.Millisecond), float64(res.Tested)/elapsed.Seconds())
}
