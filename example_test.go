package tornado_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"tornado"
)

// Generating a graph and certifying its fault tolerance is the library's
// core loop.
func ExampleGenerate() {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Total, "nodes,", g.Data, "data")
	// A screened graph tolerates any 2 simultaneous losses.
	wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("failure found up to k=2:", wc.Found)
	// Output:
	// 96 nodes, 48 data
	// failure found up to k=2: false
}

// Running a worst-case search as a durable campaign: progress is
// journaled per shard (an interrupted run resumes bit-identically), and an
// unchanged graph is answered from the fingerprint-keyed result cache.
func ExampleRunCampaign() {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		panic(err)
	}
	work, err := os.MkdirTemp("", "campaign")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(work)

	spec := tornado.CampaignSpec{Kind: tornado.CampaignWorstCase, MaxK: 2}
	opts := tornado.CampaignOptions{CacheDir: filepath.Join(work, "cache")}
	res, err := tornado.RunCampaign(filepath.Join(work, "wc"), g, spec, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("failure found up to k=2:", res.WorstCase.Found, "cached:", res.Cached)

	// Same graph, same spec, fresh directory: served from the cache.
	res, err = tornado.RunCampaign(filepath.Join(work, "wc2"), g, spec, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("failure found up to k=2:", res.WorstCase.Found, "cached:", res.Cached)
	// Output:
	// failure found up to k=2: false cached: false
	// failure found up to k=2: false cached: true
}

// Encoding and decoding real bytes through a certified shipped graph.
func ExampleLoadPrecompiled() {
	g, err := tornado.LoadPrecompiled("tornado96-1")
	if err != nil {
		panic(err)
	}
	c, err := tornado.NewCodec(g, 16)
	if err != nil {
		panic(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	blocks, err := c.Encode(payload)
	if err != nil {
		panic(err)
	}
	// Lose three blocks; peeling reconstruction recovers them.
	blocks[0], blocks[50], blocks[90] = nil, nil, nil
	decoded, err := c.Decode(blocks, len(payload))
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered:", bytes.Equal(decoded, payload))
	// Output:
	// recovered: true
}

// The analytic mirrored model is Equation (1) of the paper.
func ExampleMirroredFailGivenK() {
	// 48 mirror pairs (96 drives): losing 2 drives is fatal only when
	// they are a pair.
	fmt.Printf("%.6f\n", tornado.MirroredFailGivenK(48, 2))
	// Any 49 losses must kill a pair.
	fmt.Printf("%.0f\n", tornado.MirroredFailGivenK(48, 49))
	// Output:
	// 0.010526
	// 1
}

// Composing a failure profile with independent device failures yields the
// Table 5 reliability numbers.
func ExampleSystemFailure() {
	mirrored := func(k int) float64 { return tornado.MirroredFailGivenK(48, k) }
	p := tornado.SystemFailure(96, 0.01, mirrored)
	fmt.Printf("%.5f\n", p)
	// Output:
	// 0.00479
}

// Structural defects are the paper's §3.2 failure patterns.
func ExampleScanDefects() {
	g, err := tornado.GenerateUnscreened(tornado.DefaultParams(), 3)
	if err != nil {
		panic(err)
	}
	defects := tornado.ScanDefects(g, 3)
	fmt.Println("raw random graph has defects:", len(defects) > 0)

	screened, _, err := tornado.Generate(tornado.DefaultParams(), 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("screened graph has defects:", len(tornado.ScanDefects(screened, 3)) > 0)
	// Output:
	// raw random graph has defects: true
	// screened graph has defects: false
}
