package tornado_test

import (
	"strings"
	"testing"

	"tornado"
)

func TestPrecompiledNames(t *testing.T) {
	names := tornado.PrecompiledNames()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 shipped graphs, got %v", names)
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "tornado96-") {
			t.Errorf("unexpected name %q", n)
		}
	}
}

func TestLoadPrecompiledGraphsAreCertifiablyGood(t *testing.T) {
	for _, name := range tornado.PrecompiledNames() {
		g, err := tornado.LoadPrecompiled(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.Total != 96 || g.Data != 48 {
			t.Errorf("%s: shape %v", name, g)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// No structural defects.
		if defects := tornado.ScanDefects(g, 3); len(defects) != 0 {
			t.Errorf("%s: defects %v", name, defects)
		}
		// Quick re-certification: must tolerate any 3 losses (the shipped
		// certificates claim at least first failure 4).
		wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 3})
		if err != nil {
			t.Fatal(err)
		}
		if wc.Found {
			t.Errorf("%s: first failure %d contradicts its certificate", name, wc.FirstFailure)
		}
	}
}

func TestPrecompiledCertificates(t *testing.T) {
	for _, name := range tornado.PrecompiledNames() {
		cert, err := tornado.PrecompiledCertificate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, want := range []string{"seed:", "first-failure:", "k=1:"} {
			if !strings.Contains(cert, want) {
				t.Errorf("%s certificate missing %q:\n%s", name, want, cert)
			}
		}
	}
}

func TestLoadPrecompiledUnknown(t *testing.T) {
	if _, err := tornado.LoadPrecompiled("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := tornado.PrecompiledCertificate("nope"); err == nil {
		t.Error("unknown certificate accepted")
	}
}

func TestPrecompiledGraphUsableEndToEnd(t *testing.T) {
	g, err := tornado.LoadPrecompiled("tornado96-1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := tornado.NewCodec(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("certified ", 30))
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	blocks[0], blocks[50], blocks[95] = nil, nil, nil
	got, err := c.Decode(blocks, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("round trip mismatch")
	}
}
