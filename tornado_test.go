package tornado_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"tornado"
)

// TestPaperPipeline exercises the public API end-to-end the way the paper
// does: generate → screen → adjust → certify → profile → reliability.
func TestPaperPipeline(t *testing.T) {
	g, st, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 96 || g.Data != 48 {
		t.Fatalf("graph shape: %v", g)
	}
	t.Logf("generation: %+v, avg data degree %.2f", st, g.AvgDataDegree())

	if defects := tornado.ScanDefects(g, 3); len(defects) != 0 {
		t.Fatalf("screened graph has defects: %v", defects)
	}

	// Adjust up to k=3 cheaply (the full k=4 clearing runs in the bench
	// harness and cmd/experiments).
	improved, reports, err := tornado.Improve(g, 3, tornado.AdjustOptions{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adjustment: %d cardinalities cleared", len(reports))

	wc, err := tornado.WorstCase(improved, tornado.WorstCaseOptions{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Found {
		t.Errorf("first failure %d <= 3 after Improve(3)", wc.FirstFailure)
	}

	prof, err := tornado.Profile(improved, tornado.ProfileOptions{
		Trials: 2000, MaxK: 60, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	avg := prof.AvgNodesToReconstruct()
	if avg < 48 || avg > 96 {
		t.Errorf("average to reconstruct = %.2f, outside [48,96]", avg)
	}
	pfail := tornado.SystemFailure(96, 0.01, prof.FailFraction)
	mirror := tornado.SystemFailure(96, 0.01, func(k int) float64 { return tornado.MirroredFailGivenK(48, k) })
	t.Logf("P(fail): tornado %.3g vs mirrored %.3g", pfail, mirror)
	if pfail >= mirror {
		t.Errorf("tornado P(fail) %.3g should beat mirroring %.3g", pfail, mirror)
	}
}

func TestPublicCodecRoundTrip(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tornado.NewCodec(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tornado"), 100)
	blocks, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	blocks[3] = nil
	blocks[64] = nil
	got, err := c.Decode(blocks, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("round trip mismatch")
	}
}

func TestPublicGraphMLRoundTrip(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.graphml")
	if err := tornado.SaveGraphML(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := tornado.LoadGraphML(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total != g.Total || back.EdgeCount() != g.EdgeCount() {
		t.Error("GraphML round trip changed the graph")
	}
	var dot bytes.Buffer
	if err := tornado.WriteDOT(&dot, back, []int{0}); err != nil {
		t.Fatal(err)
	}
	if dot.Len() == 0 {
		t.Error("empty DOT output")
	}
}

func TestPublicArchiveFlow(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	store, err := tornado.NewArchive(g, tornado.NewDevices(g.Total), tornado.ArchiveConfig{
		BlockSize: 32, FirstFailure: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 500)
	if err := store.Put("doc", data); err != nil {
		t.Fatal(err)
	}
	store.Devices()[10].Fail()
	store.Devices()[60].Fail()
	got, stats, err := store.Get("doc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("archive round trip mismatch")
	}
	t.Logf("get after 2 failures: %+v", stats)

	store.Devices()[10].Replace()
	store.Devices()[60].Replace()
	rep, err := store.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksRepaired == 0 {
		t.Error("scrub repaired nothing after replacement")
	}
}

func TestPublicFederation(t *testing.T) {
	gA := tornado.MirroredGraph(4)
	gB := tornado.MirroredGraph(4)
	sys, err := tornado.NewFederation(gA, gB)
	if err != nil {
		t.Fatal(err)
	}
	if sys.TotalDevices() != 16 {
		t.Errorf("devices = %d", sys.TotalDevices())
	}
	if !sys.JointRecoverable([][]int{{0, 4}, {}}) {
		t.Error("partner should rescue a dead pair")
	}
	wc, err := tornado.WorstCase(gA, tornado.WorstCaseOptions{MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	cs := tornado.CriticalSetsOf(gA, wc.PerK[1].Failures)
	det, err := sys.DetectFirstFailure([][]tornado.CriticalSet{cs, cs}, tornado.FederationSearchOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if det.TotalErased != 4 {
		t.Errorf("mirrored federation first failure detected = %d, want 4", det.TotalErased)
	}
}

func TestPublicBaselines(t *testing.T) {
	if got := tornado.StripingFailGivenK(96, 1); got != 1 {
		t.Errorf("striping P(fail|1) = %v", got)
	}
	if got := tornado.RAID6FailGivenK(8, 12, 2); got != 0 {
		t.Errorf("raid6 P(fail|2) = %v", got)
	}
	if len(tornado.Paper96Schemes()) != 4 {
		t.Error("schemes missing")
	}
	if g := tornado.RAID5Graph(8, 12); g.Total != 96 || g.Data != 88 {
		t.Errorf("raid5 graph shape %v", g)
	}
	if math.Abs(tornado.BinomialPMF(96, 3, 0.01)-0.056) > 0.001 {
		t.Error("BinomialPMF off")
	}
}

func TestPublicAltGraphs(t *testing.T) {
	if g, err := tornado.RegularGraph(48, 4, 1); err != nil || g.Total != 96 {
		t.Errorf("regular: %v %v", g, err)
	}
	if g, err := tornado.FixedCascadeGraph(96, 3, 1); err != nil || g.Total != 96 {
		t.Errorf("cascade: %v %v", g, err)
	}
	if g, _, err := tornado.DoubledTornadoGraph(tornado.DefaultParams(), 1); err != nil || g.Total != 96 {
		t.Errorf("doubled: %v %v", g, err)
	}
	if g, _, err := tornado.ShiftedTornadoGraph(tornado.DefaultParams(), 1); err != nil || g.Total != 96 {
		t.Errorf("shifted: %v %v", g, err)
	}
}

func TestPublicRetrievalAndMAID(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 13)
	if err != nil {
		t.Fatal(err)
	}
	devs := tornado.NewDevices(g.Total)
	shelf, err := tornado.NewShelf(devs, 10)
	if err != nil {
		t.Fatal(err)
	}
	avail := make([]bool, g.Total)
	for i := range avail {
		avail[i] = true
	}
	plan, cost, err := tornado.PlanRetrieval(g, avail, shelf.CostFunc())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) == 0 || cost <= 0 {
		t.Errorf("plan %v cost %v", plan, cost)
	}
	if err := shelf.EnsureOn(plan[:5]); err != nil {
		t.Fatal(err)
	}
	if shelf.OnlineCount() == 0 {
		t.Error("nothing spinning")
	}
}

func TestRecoverableHelper(t *testing.T) {
	g := tornado.MirroredGraph(4)
	if !tornado.Recoverable(g, []int{0}) {
		t.Error("single loss should be recoverable")
	}
	if tornado.Recoverable(g, []int{0, 4}) {
		t.Error("dead pair should fail")
	}
	d := tornado.NewDecoder(g)
	if !d.Recoverable([]int{1}) || d.Recoverable([]int{1, 5}) {
		t.Error("decoder helper wrong")
	}
}

func TestGenerateUnscreenedPublic(t *testing.T) {
	g, err := tornado.GenerateUnscreened(tornado.DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClearCardinalityPublic(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 20)
	if err != nil {
		t.Fatal(err)
	}
	improved, rep, err := tornado.ClearCardinality(g, 3, tornado.AdjustOptions{MaxRounds: 8}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if improved == nil {
		t.Fatal("nil graph")
	}
	t.Logf("clear k=3: %+v", rep)
}

func TestPublicFederatedStore(t *testing.T) {
	sites := make([]*tornado.Archive, 3)
	devices := make([]tornado.DeviceArray, 3)
	for i := range sites {
		g, _, err := tornado.Generate(tornado.DefaultParams(), uint64(30+i))
		if err != nil {
			t.Fatal(err)
		}
		devices[i] = tornado.NewDevices(g.Total)
		sites[i], err = tornado.NewArchive(g, devices[i], tornado.ArchiveConfig{BlockSize: 32})
		if err != nil {
			t.Fatal(err)
		}
	}
	wan := tornado.NewWAN(tornado.WANConfig{Sites: 3, Seed: 9})
	f, err := tornado.NewFederatedStore(sites, tornado.FederatedConfig{WriteQuorum: 2, WAN: wan})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A, 0xC3}, 700)
	if err := f.Put("doc", data); err != nil {
		t.Fatal(err)
	}

	// Failover: reads survive losing one site outright.
	wan.LoseSite(1)
	got, err := f.Get("doc")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get with site 1 down: %v", err)
	}
	wan.RestoreSite(1)

	// Disaster: wipe every device at site 0 and repair it from its peers.
	for id := range devices[0] {
		devices[0][id].Fail()
		devices[0][id].Replace()
	}
	rep, err := f.RepairSite(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissingAfter != 0 || rep.Unrecoverable != 0 {
		t.Errorf("residue after site repair: %+v", rep)
	}
	if rep.Exchange.BytesWritten == 0 {
		t.Error("site repair moved zero bytes")
	}
	got, _, err = sites[0].Get("doc")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("victim site read after repair: %v", err)
	}
}

func TestPublicDisasterSoak(t *testing.T) {
	rep, err := tornado.RunDisasterSoak(tornado.DisasterSoakConfig{Seed: 11, Ops: 80, Objects: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
}
