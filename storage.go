package tornado

import (
	"context"
	"io"
	"math/rand/v2"

	"tornado/internal/altgraph"
	"tornado/internal/archive"
	"tornado/internal/chaos"
	"tornado/internal/chaos/soak"
	"tornado/internal/codec"
	"tornado/internal/device"
	"tornado/internal/federation"
	"tornado/internal/graphml"
	"tornado/internal/maid"
	"tornado/internal/raid"
	"tornado/internal/retrieval"
	"tornado/internal/serve"
	"tornado/internal/workload"
)

// Data-path and storage-system types.
type (
	// Codec XORs real bytes through a graph (encode + peeling repair).
	Codec = codec.Codec
	// Device is a simulated drive with online/standby/offline/failed state.
	Device = device.Device
	// DeviceArray is an indexed shelf of devices.
	DeviceArray = device.Array
	// DeviceState is a device's availability state.
	DeviceState = device.State
	// Archive is the prototype archival object store (§2.2, §6).
	Archive = archive.Store
	// ArchiveConfig tunes the store.
	ArchiveConfig = archive.Config
	// ArchiveObject describes a stored object.
	ArchiveObject = archive.Object
	// GetStats reports the retrieval work of one Archive.Get.
	GetStats = archive.GetStats
	// StripeHealth is one stripe's scrub record.
	StripeHealth = archive.StripeHealth
	// ScrubReport aggregates a scrub pass.
	ScrubReport = archive.ScrubReport
	// Shelf is a power-budgeted MAID device array (§2.2).
	Shelf = maid.Shelf
	// Federation is a multi-site replicated system with per-site graphs
	// and block exchange (§5.3).
	Federation = federation.System
	// CriticalSet is a component-graph failure pattern with its lost data.
	CriticalSet = federation.CriticalSet
	// FederationSearchOptions tunes the detected-first-failure search.
	FederationSearchOptions = federation.SearchOptions
	// FederationDetection is a witnessed federation-wide failure.
	FederationDetection = federation.Detection
	// RAIDScheme is a named baseline with its analytic failure model.
	RAIDScheme = raid.Scheme
	// ChaosConfig is a deterministic fault-injection schedule.
	ChaosConfig = chaos.Config
	// ChaosInjector wraps a StorageBackend with seeded fault injection.
	ChaosInjector = chaos.Injector
	// SoakConfig tunes one randomized chaos campaign.
	SoakConfig = soak.Config
	// SoakReport is one campaign's outcome; Check() enforces its invariants.
	SoakReport = soak.Report
	// StreamOption tunes PutStream/GetStream (e.g. WithStreamParallelism).
	StreamOption = archive.StreamOption
	// ServeService is the multi-tenant archive front door: per-tenant
	// namespaces and admission control, a bounded hot-stripe cache wired to
	// read-repair, and request hedging across replica stores.
	ServeService = serve.Service
	// ServeConfig tunes the serving layer; zero values take the exported
	// serve defaults.
	ServeConfig = serve.Config
	// LoadSpec configures a Zipf load-generator run against a ServeService.
	LoadSpec = workload.LoadSpec
	// LoadResult aggregates one load run (exact p50/p99/p999 latencies).
	LoadResult = workload.LoadResult
)

// Fault-tolerance error sentinels.
var (
	// ErrTransient marks a backend fault worth retrying (archive.ErrTransient).
	ErrTransient = archive.ErrTransient
	// ErrDegraded is Put refusing to store an object below its durability floor.
	ErrDegraded = archive.ErrDegraded
	// ErrInjected is a chaos-injected transient fault (wraps ErrTransient).
	ErrInjected = chaos.ErrInjected
	// ErrNodeLost is a chaos-injected permanent node loss.
	ErrNodeLost = chaos.ErrNodeLost
	// ErrNotFound reports a missing object.
	ErrNotFound = archive.ErrNotFound
	// ErrExists reports an ingest colliding with a stored object.
	ErrExists = archive.ErrExists
	// ErrDataLoss reports an object the erasure code can no longer recover.
	ErrDataLoss = archive.ErrDataLoss
	// ErrOverloaded is the serving layer shedding load (HTTP 503).
	ErrOverloaded = serve.ErrOverloaded
	// ErrUnknownTenant rejects a tenant outside a fixed tenant set.
	ErrUnknownTenant = serve.ErrUnknownTenant
)

// Streaming data-path defaults.
const (
	// DefaultStreamParallelism is the stripe pipeline width of
	// PutStream/GetStream when no WithStreamParallelism option is given.
	DefaultStreamParallelism = archive.DefaultStreamParallelism
)

// WithStreamParallelism bounds a PutStream/GetStream pipeline to n
// concurrent stripes — peak memory is O(n × stripe), never O(object).
func WithStreamParallelism(n int) StreamOption { return archive.WithParallelism(n) }

// NewService fronts one or more replica archives (identical layouts) with
// the multi-tenant serving layer.
func NewService(stores []*Archive, cfg ServeConfig) (*ServeService, error) {
	return serve.New(stores, cfg)
}

// RunLoad drives a deterministic Zipf read/write load against a
// ServeService, verifying every retrieved payload bit-for-bit.
func RunLoad(ctx context.Context, svc *ServeService, spec LoadSpec) (LoadResult, error) {
	return workload.RunLoad(ctx, svc, spec)
}

// NewChaosBackend wraps inner with a seeded, deterministic fault injector —
// composable over the device-array and MAID backends alike.
func NewChaosBackend(inner StorageBackend, cfg ChaosConfig) *ChaosInjector {
	return chaos.Wrap(inner, cfg)
}

// RunSoak executes one seeded chaos campaign against a fresh archive stack
// and returns its report; call Report.Check for the invariant verdict.
func RunSoak(cfg SoakConfig) (SoakReport, error) { return soak.Run(cfg) }

// RunSoakCtx is RunSoak with cancellation between campaign operations; a
// run that completes is byte-identical to an uncancelled one.
func RunSoakCtx(ctx context.Context, cfg SoakConfig) (SoakReport, error) {
	return soak.RunCtx(ctx, cfg)
}

// DefaultSoakFaults is the moderate-rate fault schedule soak campaigns use
// by default.
func DefaultSoakFaults() ChaosConfig { return soak.DefaultFaults() }

// Device state values.
const (
	DeviceOnline  = device.Online
	DeviceStandby = device.Standby
	DeviceOffline = device.Offline
	DeviceFailed  = device.Failed
)

// NewCodec returns a byte codec for g with the given block size.
func NewCodec(g *Graph, blockSize int) (*Codec, error) { return codec.New(g, blockSize) }

// NewDevices returns n fresh online simulated devices.
func NewDevices(n int) DeviceArray { return device.NewArray(n) }

// NewArchive builds an archival object store over one device per graph
// node.
func NewArchive(g *Graph, devices DeviceArray, cfg ArchiveConfig) (*Archive, error) {
	return archive.New(g, devices, cfg)
}

// StorageBackend abstracts the block storage under an Archive.
type StorageBackend = archive.Backend

// NewArchiveWithBackend builds an archival store over a custom backend,
// e.g. a MAID shelf (NewShelfBackend).
func NewArchiveWithBackend(g *Graph, backend StorageBackend, cfg ArchiveConfig) (*Archive, error) {
	return archive.NewWithBackend(g, backend, cfg)
}

// NewShelfBackend adapts a MAID shelf for use as an Archive backend:
// standby drives count as available and are spun up on demand, and guided
// retrieval favors drives that are already spinning.
func NewShelfBackend(shelf *Shelf) StorageBackend { return maid.NewStoreBackend(shelf) }

// ArchiveStripeLayout describes an archive's striping parameters.
type ArchiveStripeLayout = archive.StripeLayout

// NewShelf wraps devices in a MAID power manager allowing at most maxOn
// simultaneously spinning drives.
func NewShelf(devices DeviceArray, maxOn int) (*Shelf, error) {
	return maid.NewShelf(devices, maxOn)
}

// PlanRetrieval selects a minimal cheap block set that reconstructs a
// stripe (§5.2/§6 guided search). cost may be nil for unit cost.
func PlanRetrieval(g *Graph, available []bool, cost func(node int) float64) ([]int, float64, error) {
	if cost == nil {
		return retrieval.Plan(g, available, nil)
	}
	return retrieval.Plan(g, available, cost)
}

// NewFederation builds a multi-site replicated system over the given site
// graphs (paper §5.3: "each site uses a different Tornado Code graph").
func NewFederation(sites ...*Graph) (*Federation, error) {
	return federation.NewSystem(sites...)
}

// CriticalSetsOf expands failing erasure sets into CriticalSets by decoding
// each against g.
func CriticalSetsOf(g *Graph, failures [][]int) []CriticalSet {
	return federation.CriticalSets(g, failures)
}

// Baseline graph families (§4.1, §4.3).

// MirroredGraph returns an n-pair mirrored system as a parity graph.
func MirroredGraph(pairs int) *Graph { return raid.MirroredGraph(pairs) }

// RAID5Graph returns luns drawers of disksPerLUN drives as a parity graph.
func RAID5Graph(luns, disksPerLUN int) *Graph { return raid.RAID5Graph(luns, disksPerLUN) }

// RegularGraph returns a random degree-regular single-stage bipartite graph
// with data nodes per side.
func RegularGraph(data, degree int, seed uint64) (*Graph, error) {
	return altgraph.RegularSingleStage(data, degree, rand.New(rand.NewPCG(seed, 2)))
}

// FixedCascadeGraph returns a cascaded random graph with constant left
// degree (the paper's fixed-degree cascading LDPC graphs).
func FixedCascadeGraph(totalNodes, degree int, seed uint64) (*Graph, error) {
	return altgraph.FixedCascade(totalNodes, degree, rand.New(rand.NewPCG(seed, 2)))
}

// DoubledTornadoGraph returns an altered Tornado graph with the left
// distribution doubled (§4.3).
func DoubledTornadoGraph(p Params, seed uint64) (*Graph, GenStats, error) {
	return altgraph.DoubledTornado(p, rand.New(rand.NewPCG(seed, 2)))
}

// ShiftedTornadoGraph returns an altered Tornado graph with the left
// distribution shifted +1 edge (§4.3).
func ShiftedTornadoGraph(p Params, seed uint64) (*Graph, GenStats, error) {
	return altgraph.ShiftedTornado(p, rand.New(rand.NewPCG(seed, 2)))
}

// Analytic baseline failure models (§4.1, Table 5).

// MirroredFailGivenK is Equation (1) for an n-pair mirrored array.
func MirroredFailGivenK(pairs, k int) float64 { return raid.MirroredFailGivenK(pairs, k) }

// RAID5FailGivenK is the analytic drawer-parity model.
func RAID5FailGivenK(luns, disksPerLUN, k int) float64 {
	return raid.RAID5FailGivenK(luns, disksPerLUN, k)
}

// RAID6FailGivenK is the analytic dual-parity drawer model.
func RAID6FailGivenK(luns, disksPerLUN, k int) float64 {
	return raid.RAID6FailGivenK(luns, disksPerLUN, k)
}

// StripingFailGivenK is the no-redundancy model (any loss is fatal).
func StripingFailGivenK(n, k int) float64 { return raid.StripingFailGivenK(n, k) }

// Paper96Schemes returns the paper's 96-drive baseline systems.
func Paper96Schemes() []RAIDScheme { return raid.Paper96Schemes() }

// WriteDOT renders g as Graphviz DOT with the given nodes highlighted (the
// testing suite's failed-graph rendering).
func WriteDOT(w io.Writer, g *Graph, highlight []int) error {
	return graphml.DOT(w, g, highlight)
}

// WriteSVG renders g as a standalone SVG with the given nodes highlighted
// (no Graphviz needed).
func WriteSVG(w io.Writer, g *Graph, highlight []int) error {
	return graphml.SVG(w, g, highlight)
}

// WriteGraphML writes g as GraphML to w.
func WriteGraphML(w io.Writer, g *Graph) error { return graphml.Encode(w, g) }

// ReadGraphML parses a GraphML graph from r.
func ReadGraphML(r io.Reader) (*Graph, error) { return graphml.Decode(r) }
