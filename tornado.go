// Package tornado reproduces "Fault Tolerance of Tornado Codes for Archival
// Storage" (Woitaszek & Tufo, HPDC 2006): construction of Tornado Code
// (cascaded LDPC) erasure graphs, exhaustive worst-case fault-tolerance
// analysis, Monte Carlo reconstruction-failure profiles, structural defect
// detection and feedback-based graph adjustment, RAID/mirroring baselines, a
// reliability model, a prototype archival object store with guided
// retrieval and scrubbing, and multi-graph federated storage.
//
// The package is a facade over the internal implementation packages; the
// types it exposes are aliases, so values flow freely between the
// high-level helpers here and any lower-level code.
//
// A typical session mirrors the paper's §3–§4 pipeline:
//
//	g, _, err := tornado.Generate(tornado.DefaultParams(), 2006)   // construct + screen
//	g, reports, err := tornado.Improve(g, 4, tornado.AdjustOptions{}, 7) // raise first failure
//	wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 5})   // certify
//	profile, err := tornado.Profile(g, tornado.ProfileOptions{Trials: 100000})
//	pfail := tornado.SystemFailure(g.Total, 0.01, profile.FailFraction)  // Table 5 row
//
// # Context-first API convention
//
// Every long-running entry point comes in a pair: Foo(args) and
// FooCtx(ctx, args). The ctx-first variant honors cancellation and
// deadlines — worker loops check the context at combination-chunk
// boundaries, so cancellation returns promptly (with ctx.Err()) instead of
// finishing a multi-minute search. The short name is a thin
// backward-compatible wrapper that delegates with context.Background().
// The pairs are WorstCase/WorstCaseCtx, Profile/ProfileCtx,
// Certify/CertifyCtx, ClearCardinality/ClearCardinalityCtx, Improve/ImproveCtx,
// MeasureOverhead/MeasureOverheadCtx, and
// SimulateLifetime/SimulateLifetimeCtx; steward clients and replicators
// carry ...Ctx methods the same way. New long-running APIs should follow
// the same convention.
package tornado

import (
	"context"
	"math/rand/v2"

	"tornado/internal/adjust"
	"tornado/internal/campaign"
	"tornado/internal/core"
	"tornado/internal/decode"
	"tornado/internal/defect"
	"tornado/internal/graph"
	"tornado/internal/graphml"
	"tornado/internal/reliability"
	"tornado/internal/sim"
)

// Core graph types.
type (
	// Graph is a cascaded bipartite LDPC erasure graph.
	Graph = graph.Graph
	// Level describes one cascade stage of a Graph.
	Level = graph.Level
	// Params configures Tornado graph generation (paper §3.1).
	Params = core.Params
	// GenStats reports generation effort (attempts, discards, rewires).
	GenStats = core.GenStats
)

// Analysis types.
type (
	// WorstCaseOptions tunes the exhaustive first-failure search (§3).
	WorstCaseOptions = sim.WorstCaseOptions
	// WorstCaseResult reports the search outcome.
	WorstCaseResult = sim.WorstCaseResult
	// KResult is the exhaustive examination of one erasure cardinality.
	KResult = sim.KResult
	// ProfileOptions tunes the failure-fraction profile (§3).
	ProfileOptions = sim.ProfileOptions
	// FailureProfile holds P(fail | k offline) for every k.
	FailureProfile = sim.Profile
	// AdjustOptions tunes the feedback adjustment loop (§3.3).
	AdjustOptions = adjust.Options
	// AdjustReport describes one cleared cardinality.
	AdjustReport = adjust.Report
	// Defect is a closed left-node set found by the structural scan (§3.2).
	Defect = defect.Finding
	// DecodeResult reports a structural decode (lost nodes on failure).
	DecodeResult = decode.Result
	// ScanKernel selects the evaluation kernel used by exhaustive scans.
	ScanKernel = sim.ScanKernel
	// CertifyOptions tunes the archival-scale sampled certification.
	CertifyOptions = sim.SampledOptions
	// CertifyResult reports a sampled certification: pooled failure tally
	// with Wilson CI, collision-count strata, screening rate, and the
	// precision trajectory.
	CertifyResult = sim.SampledResult
)

// Scan kernel selectors for WorstCaseOptions.Kernel and CampaignSpec.Kernel.
// Both kernels produce bit-identical results; KernelSliced evaluates 64
// erasure patterns per pass and prunes lanes a peeling certificate proves
// recoverable.
const (
	KernelScalar = sim.KernelScalar
	KernelSliced = sim.KernelSliced
)

// DefaultParams returns the paper's 96-node construction parameters.
func DefaultParams() Params { return core.DefaultParams() }

// Generate constructs a defect-screened Tornado Code graph from a seed
// (paper §3.1–§3.2). The same seed always yields the same graph.
func Generate(p Params, seed uint64) (*Graph, GenStats, error) {
	return core.Generate(p, rand.New(rand.NewPCG(seed, 0)))
}

// GenerateUnscreened constructs a raw random Tornado graph without defect
// screening — the paper's §3.2 baseline.
func GenerateUnscreened(p Params, seed uint64) (*Graph, error) {
	return core.GenerateUnscreened(p, rand.New(rand.NewPCG(seed, 0)))
}

// ScanDefects finds closed data-node sets up to maxSize (paper §3.2).
func ScanDefects(g *Graph, maxSize int) []Defect {
	return defect.ScanDataLevel(g, maxSize)
}

// ScanDefectsCtx is ScanDefects with cancellation and an explicit worker
// count (0 = GOMAXPROCS): scan workers observe ctx at subset-chunk
// boundaries, so a canceled scan returns ctx.Err() within one chunk of
// kernel work.
func ScanDefectsCtx(ctx context.Context, g *Graph, maxSize, workers int) ([]Defect, error) {
	return defect.ScanDataLevelCtx(ctx, g, maxSize, workers)
}

// ScanAllDefects extends the closed-set scan to every cascade level: the
// data level plus each distinct check-level left range, findings tagged
// with their Level. Upper-level findings mark cascade weak points (the
// sealed checks cannot recover those nodes top-down) rather than
// standalone data loss; the generation gate remains data-level only.
func ScanAllDefects(g *Graph, maxSize int) ([]Defect, error) {
	return defect.ScanGraph(g, maxSize)
}

// ScanAllDefectsCtx is ScanAllDefects with cancellation and an explicit
// worker count (0 = GOMAXPROCS).
func ScanAllDefectsCtx(ctx context.Context, g *Graph, maxSize, workers int) ([]Defect, error) {
	return defect.ScanGraphCtx(ctx, g, maxSize, workers)
}

// Certify runs the archival-scale sampled certification of erasure
// cardinality k: stratified Monte Carlo where most patterns are resolved
// by structural proof (the generation-time defect screen's collision
// analysis) and only the unresolved tail is decoded, 64 patterns per pass
// through the bit-sliced kernel. Sampling stops once the pooled 95% Wilson
// CI half-width reaches opts.Epsilon. This is the certification path for
// graphs whose erasure spaces overflow exhaustive rank arithmetic
// (WorstCase at n=100,000 fails with a rank-overflow error pointing here).
func Certify(g *Graph, k int, opts CertifyOptions) (*CertifyResult, error) {
	return sim.SampleStratified(g, k, opts)
}

// CertifyCtx is Certify with cancellation, honored at combination-chunk
// boundaries inside every sampling worker.
func CertifyCtx(ctx context.Context, g *Graph, k int, opts CertifyOptions) (*CertifyResult, error) {
	return sim.SampleStratifiedCtx(ctx, g, k, opts)
}

// ScanClosedPairs finds every closed data-node pair with the O(edges)
// hashed scan the streaming generation path uses at archival scale. Unlike
// ScanDefects it never walks the pair rank space, so it stays fast at
// n=100,000.
func ScanClosedPairs(g *Graph) []Defect {
	return core.ClosedDataPairs(g)
}

// WorstCase runs the exhaustive combinatorial search for the graph's
// worst-case failure scenario (paper §3).
func WorstCase(g *Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	return sim.WorstCase(g, opts)
}

// WorstCaseCtx is WorstCase with cancellation: search workers observe ctx
// at combination-chunk boundaries and a canceled search returns ctx.Err()
// within one chunk of decoding work.
func WorstCaseCtx(ctx context.Context, g *Graph, opts WorstCaseOptions) (WorstCaseResult, error) {
	return sim.WorstCaseCtx(ctx, g, opts)
}

// Profile measures the fraction of failed reconstructions for each number
// of offline nodes (paper §3), exhaustively where cheap and by Monte Carlo
// sampling elsewhere.
func Profile(g *Graph, opts ProfileOptions) (*FailureProfile, error) {
	return sim.FailureProfile(g, opts)
}

// ProfileCtx is Profile with cancellation threaded through the enumeration
// and sampling workers.
func ProfileCtx(ctx context.Context, g *Graph, opts ProfileOptions) (*FailureProfile, error) {
	return sim.FailureProfileCtx(ctx, g, opts)
}

// Recoverable reports whether erasing the given nodes still allows full
// data reconstruction. For bulk queries construct a decoder once via
// NewDecoder.
func Recoverable(g *Graph, erased []int) bool {
	return decode.New(g).Recoverable(erased)
}

// NewDecoder returns a reusable structural peeling decoder for g.
func NewDecoder(g *Graph) *decode.Decoder { return decode.New(g) }

// ClearCardinality rewires g (returning an improved copy) until no erasure
// set of exactly k nodes loses data, following the paper's §3.3 feedback
// adjustment. The input graph is not modified.
func ClearCardinality(g *Graph, k int, opts AdjustOptions, seed uint64) (*Graph, AdjustReport, error) {
	return adjust.ClearK(g, k, opts, rand.New(rand.NewPCG(seed, 1)))
}

// ClearCardinalityCtx is ClearCardinality with cancellation between
// adjustment rounds and inside each exhaustive re-test.
func ClearCardinalityCtx(ctx context.Context, g *Graph, k int, opts AdjustOptions, seed uint64) (*Graph, AdjustReport, error) {
	return adjust.ClearKCtx(ctx, g, k, opts, rand.New(rand.NewPCG(seed, 1)))
}

// Improve repeatedly clears the first failing cardinality up to maxK,
// raising the graph's first-failure point as far as adjustment allows
// (paper §3.3: screened graphs typically move from first failure 4 to 5).
func Improve(g *Graph, maxK int, opts AdjustOptions, seed uint64) (*Graph, []AdjustReport, error) {
	return adjust.Improve(g, maxK, opts, rand.New(rand.NewPCG(seed, 1)))
}

// ImproveCtx is Improve with cancellation threaded through every
// worst-case search and adjustment round.
func ImproveCtx(ctx context.Context, g *Graph, maxK int, opts AdjustOptions, seed uint64) (*Graph, []AdjustReport, error) {
	return adjust.ImproveCtx(ctx, g, maxK, opts, rand.New(rand.NewPCG(seed, 1)))
}

// SystemFailure composes a conditional failure profile with independent
// device failures at the given annual failure rate — Equations (2)–(3) and
// Table 5.
func SystemFailure(devices int, afr float64, failGivenK func(k int) float64) float64 {
	return reliability.SystemFailure(devices, afr, failGivenK)
}

// BinomialPMF is Equation (2): P(exactly k of n devices fail) at rate p.
func BinomialPMF(n, k int, p float64) float64 {
	return reliability.BinomialPMF(n, k, p)
}

// SaveGraphML / LoadGraphML persist graphs in the paper's interchange
// format (§3: "the testing system stores graphs in the standardized
// GraphML format").

// SaveGraphML writes g to path as GraphML.
func SaveGraphML(path string, g *Graph) error { return graphml.WriteFile(path, g) }

// LoadGraphML reads a GraphML graph from path.
func LoadGraphML(path string) (*Graph, error) { return graphml.ReadFile(path) }

// Campaign types: durable, resumable experiment campaigns with sharded
// checkpointing and a fingerprint-keyed result cache (internal/campaign).
type (
	// CampaignSpec describes a campaign workload (kind + search options).
	CampaignSpec = campaign.Spec
	// CampaignOptions tunes campaign execution without affecting results.
	CampaignOptions = campaign.Options
	// CampaignResult is a campaign outcome (worst-case search or profile).
	CampaignResult = campaign.Result
	// CampaignStatus is a progress snapshot of a campaign directory.
	CampaignStatus = campaign.Status
	// CampaignKind selects the campaign workload.
	CampaignKind = campaign.Kind
)

// Campaign workload kinds.
const (
	CampaignWorstCase = campaign.KindWorstCase
	CampaignProfile   = campaign.KindProfile
	// CampaignSampled is the archival-scale sampled certification as a
	// durable campaign: per-block journaling, bit-identical resume, and the
	// Wilson-CI stopping rule evaluated at the same round boundaries as
	// Certify.
	CampaignSampled = campaign.KindSampled
)

// RunCampaign starts a fresh campaign in dir and executes it to
// completion, journaling every completed shard so an interrupted run can
// be resumed. Results for unchanged graphs are served from the
// opts.CacheDir result cache when set.
func RunCampaign(dir string, g *Graph, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(dir, g, spec, opts)
}

// RunCampaignCtx is RunCampaign with cancellation: completed shards stay
// journaled and ResumeCampaignCtx continues from them.
func RunCampaignCtx(ctx context.Context, dir string, g *Graph, spec CampaignSpec, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.RunCtx(ctx, dir, g, spec, opts)
}

// ResumeCampaign continues an interrupted campaign to completion, skipping
// journaled shards; the merged result is bit-identical to an uninterrupted
// run.
func ResumeCampaign(dir string, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Resume(dir, opts)
}

// ResumeCampaignCtx is ResumeCampaign with cancellation.
func ResumeCampaignCtx(ctx context.Context, dir string, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.ResumeCtx(ctx, dir, opts)
}

// CampaignProgress reports the progress of the campaign in dir without
// running anything.
func CampaignProgress(dir string) (CampaignStatus, error) {
	return campaign.ReadStatus(dir)
}
