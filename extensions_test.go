package tornado_test

import (
	"testing"

	"tornado"
)

func TestMeasureOverheadPublic(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 30)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tornado.MeasureOverhead(g, tornado.OverheadOptions{Trials: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if oh := res.MeanOverhead(); oh < 1.0 || oh > 1.6 {
		t.Errorf("overhead = %v", oh)
	}
	if res.Quantile(0.5) < g.Data {
		t.Errorf("median below data count")
	}
}

func TestMTTDLPublic(t *testing.T) {
	mirror := func(k int) float64 { return tornado.MirroredFailGivenK(48, k) }
	noRepair, err := tornado.MTTDL(96, 0.01, 0, 0, mirror)
	if err != nil {
		t.Fatal(err)
	}
	withRepair, err := tornado.MTTDL(96, 0.01, 52, 2, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if withRepair <= noRepair {
		t.Errorf("repair did not help: %v vs %v", withRepair, noRepair)
	}
	if p := tornado.AnnualLossProbability(withRepair); p <= 0 || p >= 1 {
		t.Errorf("annual loss probability = %v", p)
	}
}

func TestScheduleReconstructionPublic(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 31)
	if err != nil {
		t.Fatal(err)
	}
	avail := make([]bool, g.Total)
	for i := range avail {
		avail[i] = true
	}
	jobs := []tornado.StripeJob{
		{ID: "s1", Available: avail},
		{ID: "s2", Available: avail},
	}
	sched, total, err := tornado.ScheduleReconstruction(g, jobs, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 2 {
		t.Fatalf("schedule: %v", sched)
	}
	_, arrivalTotal, err := tornado.ScheduleArrivalOrder(g, jobs, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if total > arrivalTotal {
		t.Errorf("greedy %d worse than arrival %d", total, arrivalTotal)
	}
}

func TestRunWorkloadPublic(t *testing.T) {
	g, _, err := tornado.Generate(tornado.DefaultParams(), 32)
	if err != nil {
		t.Fatal(err)
	}
	devices := tornado.NewDevices(g.Total)
	store, err := tornado.NewArchive(g, devices, tornado.ArchiveConfig{BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tornado.RunWorkload(store, devices, tornado.WorkloadSpec{
		Ops: 50, PutFraction: 0.5, SizeDist: tornado.SizeUniform,
		MinSize: 100, MaxSize: 5000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts == 0 || res.Corrupted != 0 || res.LostObjects != 0 {
		t.Errorf("workload result: %+v", res)
	}
}

func TestGenerateLECPublic(t *testing.T) {
	g, st, err := tornado.GenerateLEC(48, 48, tornado.LECOptions{Candidates: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total != 96 || st.Candidates != 4 {
		t.Errorf("lec: %v %+v", g, st)
	}
	// The LEC graph plugs into the same analysis pipeline.
	prof, err := tornado.Profile(g, tornado.ProfileOptions{Trials: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if avg := prof.AvgNodesToReconstruct(); avg < 48 || avg > 96 {
		t.Errorf("LEC avg to reconstruct = %v", avg)
	}
}
