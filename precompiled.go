package tornado

import (
	"bytes"
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The paper's conclusion: "A storage system using Tornado Codes where data
// loss must be avoided should use precompiled graphs and not random
// graphs". The library therefore ships certified graph instances, each
// produced by the full generate → screen/repair → adjust → certify
// pipeline (regenerate with cmd/precompile). The .cert sidecars record the
// exhaustive-search certification.
//
//go:embed precompiled
var precompiledFS embed.FS

// PrecompiledNames lists the certified graphs shipped with the library.
func PrecompiledNames() []string {
	entries, err := precompiledFS.ReadDir("precompiled")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".graphml") {
			names = append(names, strings.TrimSuffix(e.Name(), ".graphml"))
		}
	}
	sort.Strings(names)
	return names
}

// LoadPrecompiled returns a shipped certified graph by name (see
// PrecompiledNames).
func LoadPrecompiled(name string) (*Graph, error) {
	data, err := precompiledFS.ReadFile("precompiled/" + name + ".graphml")
	if err != nil {
		return nil, fmt.Errorf("tornado: unknown precompiled graph %q (have %v)", name, PrecompiledNames())
	}
	return ReadGraphML(bytes.NewReader(data))
}

// PrecompiledCertificate returns the certification record of a shipped
// graph: the seed, adjustment target, and the exhaustive-search results
// that back its fault-tolerance claim.
func PrecompiledCertificate(name string) (string, error) {
	data, err := precompiledFS.ReadFile("precompiled/" + name + ".cert")
	if err != nil {
		return "", fmt.Errorf("tornado: no certificate for %q", name)
	}
	return string(data), nil
}
