// Operations example: the day-2 concerns of a Tornado-coded archive —
// capacity planning with MTTDL under repair, a verified synthetic
// workload with failure/repair injection, and batch reconstruction
// scheduling on a power-budgeted shelf. These are the §5/§6 future-work
// threads of the paper, implemented.
package main

import (
	"fmt"
	"log"

	"tornado"
)

func main() {
	log.SetFlags(0)

	// Use a certified precompiled graph, per the paper's conclusion
	// ("should use precompiled graphs and not random graphs").
	g, err := tornado.LoadPrecompiled("tornado96-1")
	if err != nil {
		log.Fatal(err)
	}
	cert, err := tornado.PrecompiledCertificate("tornado96-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("using %v\ncertificate excerpt:\n", g)
	for i, line := 0, 0; i < len(cert) && line < 4; i++ {
		fmt.Print(string(cert[i]))
		if cert[i] == '\n' {
			line++
		}
	}
	fmt.Println()

	// 1. Capacity planning: how long until data loss, with and without a
	//    repair crew? (AFR 1%/drive.)
	prof, err := tornado.Profile(g, tornado.ProfileOptions{Trials: 4000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	mirror := func(k int) float64 { return tornado.MirroredFailGivenK(48, k) }
	for _, pol := range []struct {
		name      string
		mu        float64
		repairmen int
	}{
		{"no repair", 0, 0},
		{"monthly rebuilds", 12, 1},
	} {
		mt, err := tornado.MTTDL(96, 0.01, pol.mu, pol.repairmen, prof.FailFraction)
		if err != nil {
			log.Fatal(err)
		}
		mm, err := tornado.MTTDL(96, 0.01, pol.mu, pol.repairmen, mirror)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MTTDL (%s): tornado %.3g years vs mirrored %.3g years (%.0fx)\n",
			pol.name, mt, mm, mt/mm)
	}

	// 2. A verified workload: ingest and retrieve objects while drives
	//    fail and get replaced; every payload is checked.
	devices := tornado.NewDevices(g.Total)
	store, err := tornado.NewArchive(g, devices, tornado.ArchiveConfig{
		BlockSize: 1024, FirstFailure: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tornado.RunWorkload(store, devices, tornado.WorkloadSpec{
		Ops: 300, PutFraction: 0.4,
		SizeDist: tornado.SizeLogNormal, MeanSize: 20000, MaxSize: 200000,
		FailEvery: 80, RepairEvery: 150, Seed: 2006,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload: %d puts (%.1f MiB), %d gets, %d failures injected, %d drives replaced, %d blocks repaired\n",
		res.Puts, float64(res.BytesIn)/(1<<20), res.Gets, res.FailuresInjected, res.Replacements, res.BlocksRepaired)
	fmt.Printf("verification: %d corrupted, %d lost\n", res.Corrupted, res.LostObjects)
	if res.Corrupted != 0 || res.LostObjects != 0 {
		log.Fatal("workload lost or corrupted data")
	}

	// 3. Batch reconstruction scheduling: ten stripes with differing
	//    block availability must be rebuilt on a 52-drive power budget
	//    (room for one job's working set, not for thrashing between two).
	jobs := make([]tornado.StripeJob, 10)
	for i := range jobs {
		avail := make([]bool, g.Total)
		for v := range avail {
			avail[v] = true
		}
		// Alternate which block group each stripe is missing: the two
		// groups' substitute-check working sets do not both fit the
		// budget, so ordering matters.
		for v := (i % 2) * 10; v < (i%2)*10+10; v++ {
			avail[v] = false
		}
		jobs[i] = tornado.StripeJob{ID: fmt.Sprintf("stripe-%02d", i), Available: avail}
	}
	_, greedy, err := tornado.ScheduleReconstruction(g, jobs, nil, 52)
	if err != nil {
		log.Fatal(err)
	}
	_, arrival, err := tornado.ScheduleArrivalOrder(g, jobs, nil, 52)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch reconstruction of %d stripes (budget 52 drives): %d spin-ups scheduled vs %d in arrival order\n",
		len(jobs), greedy, arrival)
}
