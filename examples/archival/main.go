// Archival example: a 96-device archival object store protected by an
// adjusted Tornado Code graph, surviving progressive device failures with
// proactive scrubbing — the single-site system of paper §2.2/§6.
//
// The scenario: upload a document collection, fail drives one at a time,
// watch the scrubber's margin-to-first-failure reports, replace drives,
// and verify no object was ever lost.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"tornado"
)

func main() {
	log.SetFlags(0)

	// Build and certify the erasure graph: adjust until any 3 losses are
	// tolerated, then certify the first-failure point.
	g, _, err := tornado.Generate(tornado.DefaultParams(), 2011)
	if err != nil {
		log.Fatal(err)
	}
	g, _, err = tornado.Improve(g, 3, tornado.AdjustOptions{}, 12)
	if err != nil {
		log.Fatal(err)
	}
	wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 4})
	if err != nil {
		log.Fatal(err)
	}
	firstFailure := wc.FirstFailure
	if !wc.Found {
		firstFailure = 5
	}
	fmt.Printf("erasure graph: %v\n", g)
	fmt.Printf("certified first failure: %d devices\n\n", firstFailure)

	devices := tornado.NewDevices(g.Total)
	store, err := tornado.NewArchive(g, devices, tornado.ArchiveConfig{
		BlockSize:    1024,
		FirstFailure: firstFailure,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Upload a collection.
	rng := rand.New(rand.NewPCG(42, 0))
	originals := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("records/%04d.dat", i)
		data := make([]byte, 30000+rng.IntN(90000))
		for j := range data {
			data[j] = byte(rng.IntN(256))
		}
		if err := store.Put(name, data); err != nil {
			log.Fatal(err)
		}
		originals[name] = data
	}
	fmt.Printf("uploaded %d objects\n", len(originals))

	// Fail devices one at a time; after each failure, scrub and read a
	// random object back through reconstruction.
	var failed []int
	for round := 1; round <= firstFailure-1; round++ {
		id := rng.IntN(g.Total)
		for devices[id].State() == tornado.DeviceFailed {
			id = rng.IntN(g.Total)
		}
		devices[id].Fail()
		failed = append(failed, id)

		rep, err := store.Scrub(false)
		if err != nil {
			log.Fatal(err)
		}
		minMargin := firstFailure
		for _, h := range rep.Stripes {
			if h.Margin < minMargin {
				minMargin = h.Margin
			}
		}
		fmt.Printf("round %d: failed device %d (total %d down); min stripe margin %d, %d at risk, %d unrecoverable\n",
			round, id, len(failed), minMargin, rep.AtRisk, rep.Unrecoverable)

		// Every object must still read back intact.
		for name, want := range originals {
			got, _, err := store.Get(name)
			if err != nil {
				log.Fatalf("object %s lost after %d failures: %v", name, len(failed), err)
			}
			if !bytes.Equal(got, want) {
				log.Fatalf("object %s corrupted", name)
			}
		}
	}
	fmt.Printf("\nall objects intact with %d devices down\n", len(failed))

	// Operations replaces the dead drives; the scrubber repopulates them
	// before the next failure can push a stripe past the margin.
	for _, id := range failed {
		devices[id].Replace()
	}
	rep, err := store.Scrub(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaced %d drives; scrub rewrote %d blocks\n", len(failed), rep.BlocksRepaired)

	rep, err = store.Scrub(false)
	if err != nil {
		log.Fatal(err)
	}
	missing := 0
	for _, h := range rep.Stripes {
		missing += len(h.Missing)
	}
	fmt.Printf("final scrub: %d stripes fully populated (%d blocks missing)\n", len(rep.Stripes), missing)
}
