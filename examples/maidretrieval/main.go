// MAID retrieval example: the paper argues (§2.2, §5.2) that combining
// Tornado Codes with a massive array of idle disks can be both reliable
// and power efficient, because the code gives the retrieval layer freedom
// in *which* blocks to fetch. This example quantifies that: read a stripe
// from a 96-drive shelf with a small power budget, comparing
//
//  1. naive retrieval (spin up everything holding a block) with
//  2. guided retrieval (plan a minimal block set, preferring drives that
//     are already spinning).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"tornado"
)

func main() {
	log.SetFlags(0)

	g, _, err := tornado.Generate(tornado.DefaultParams(), 2011)
	if err != nil {
		log.Fatal(err)
	}
	c, err := tornado.NewCodec(g, 512)
	if err != nil {
		log.Fatal(err)
	}

	// Prepare one encoded stripe.
	rng := rand.New(rand.NewPCG(5, 5))
	payload := make([]byte, c.Capacity())
	for i := range payload {
		payload[i] = byte(rng.IntN(256))
	}
	blocks, err := c.Encode(payload)
	if err != nil {
		log.Fatal(err)
	}

	run := func(guided bool, budget int) (spinUps int64) {
		devices := tornado.NewDevices(g.Total)
		shelf, err := tornado.NewShelf(devices, budget)
		if err != nil {
			log.Fatal(err)
		}
		// Load the stripe (bulk load spins each drive once).
		for node, b := range blocks {
			if err := shelf.Write(node, []byte("stripe0"), b); err != nil {
				log.Fatal(err)
			}
		}
		base := shelf.SpinUps()

		// A couple of drives died since the stripe was written.
		devices[3].Fail()
		devices[70].Fail()

		avail := make([]bool, g.Total)
		for node := range avail {
			avail[node] = devices[node].State() != tornado.DeviceFailed
		}

		var toRead []int
		if guided {
			plan, _, err := tornado.PlanRetrieval(g, avail, shelf.CostFunc())
			if err != nil {
				log.Fatal(err)
			}
			toRead = plan
		} else {
			for node, ok := range avail {
				if ok {
					toRead = append(toRead, node)
				}
			}
		}

		fetched := make([][]byte, g.Total)
		for _, node := range toRead {
			b, err := shelf.Read(node, []byte("stripe0"))
			if err != nil {
				log.Fatal(err)
			}
			fetched[node] = b
		}
		got, err := c.Decode(fetched, len(payload))
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("payload mismatch")
		}
		return shelf.SpinUps() - base
	}

	const budget = 24
	fmt.Printf("96-drive MAID shelf, power budget %d spinning drives, 2 failed drives\n\n", budget)
	naive := run(false, budget)
	guided := run(true, budget)
	fmt.Printf("naive retrieval:  stripe decoded after %d spin-ups (reads every reachable block)\n", naive)
	fmt.Printf("guided retrieval: stripe decoded after %d spin-ups (minimal planned block set)\n", guided)
	if guided >= naive {
		log.Fatal("guided retrieval should spin up fewer drives")
	}
	fmt.Printf("\nguided retrieval saved %d spin-ups (%.0f%%) on this read\n",
		naive-guided, 100*float64(naive-guided)/float64(naive))
}
