// Federation example: a two-site data stewarding system in which each site
// protects the same replicated collection with a *different* Tornado Code
// graph (paper §5.3). When a failure pattern defeats both sites
// independently, exchanging a single critical block can still rescue the
// data — the complementary-graph effect behind Table 7.
package main

import (
	"fmt"
	"log"

	"tornado"
)

func main() {
	log.SetFlags(0)

	// Two sites, two different graphs over the same 48 logical blocks.
	gA, _, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		log.Fatal(err)
	}
	gA, _, err = tornado.Improve(gA, 3, tornado.AdjustOptions{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	gA.Name = "site-A"
	gB, _, err := tornado.Generate(tornado.DefaultParams(), 2007)
	if err != nil {
		log.Fatal(err)
	}
	gB, _, err = tornado.Improve(gB, 3, tornado.AdjustOptions{}, 2)
	if err != nil {
		log.Fatal(err)
	}
	gB.Name = "site-B"
	fmt.Printf("site A: %v\nsite B: %v\n\n", gA, gB)

	// Find each site's critical sets (smallest failing erasure patterns).
	wcA, err := tornado.WorstCase(gA, tornado.WorstCaseOptions{MaxK: 4})
	if err != nil {
		log.Fatal(err)
	}
	wcB, err := tornado.WorstCase(gB, tornado.WorstCaseOptions{MaxK: 4})
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, wc tornado.WorstCaseResult) [][]int {
		if !wc.Found {
			fmt.Printf("%s tolerates any %d losses\n", name, 4)
			return nil
		}
		last := wc.PerK[len(wc.PerK)-1]
		fmt.Printf("%s first failure: %d lost devices (%d of %d patterns)\n",
			name, wc.FirstFailure, last.FailureCount, last.Tested)
		return last.Failures
	}
	failsA := report("site A", wcA)
	failsB := report("site B", wcB)
	if failsA == nil || failsB == nil {
		fmt.Println("\nno critical sets at k<=4; nothing to demonstrate (re-run with other seeds)")
		return
	}

	// The headline §5.3 scenario: hit site A with one of its own critical
	// sets. Site A alone loses data...
	sys, err := tornado.NewFederation(gA, gB)
	if err != nil {
		log.Fatal(err)
	}
	csA := tornado.CriticalSetsOf(gA, failsA)
	cs := csA[0]
	fmt.Printf("\nsite A hit by its critical set %v (would lose blocks %v alone)\n", cs.Erased, cs.Lost)

	// ...but the federation exchanges blocks: site B reconstructs the
	// critical blocks and supplies them.
	ok, lost := sys.JointDecode([][]int{cs.Erased, nil})
	fmt.Printf("federated decode with a healthy partner: recovered=%v lost=%v\n", ok, lost)
	if !ok {
		log.Fatal("federation failed to rescue site A")
	}

	// Even when BOTH sites are hit by their own critical sets at the same
	// time, the sets differ, so each site rescues the other's blocks.
	csB := tornado.CriticalSetsOf(gB, failsB)
	ok, lost = sys.JointDecode([][]int{cs.Erased, csB[0].Erased})
	fmt.Printf("both sites hit by their own critical sets: recovered=%v lost=%v\n", ok, lost)

	// Finally, search for the smallest joint failure the seeded heuristic
	// can construct (Table 7's "first failure detected").
	det, err := sys.DetectFirstFailure(
		[][]tornado.CriticalSet{csA, csB},
		tornado.FederationSearchOptions{Seed: 3},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst failure detected for the federation: %d devices\n", det.TotalErased)
	fmt.Printf("  site A erasure: %v\n", det.SiteErasures[0])
	fmt.Printf("  site B erasure: %v\n", det.SiteErasures[1])
	single := wcA.FirstFailure
	fmt.Printf("compare: one site alone first-fails at %d; same-graph replication at %d\n",
		single, 2*single)
}
