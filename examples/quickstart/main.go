// Quickstart: encode a file into a 96-block Tornado Code stripe, lose a
// handful of blocks, and decode the original data back — the core loop of
// the paper in ~60 lines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"tornado"
)

func main() {
	log.SetFlags(0)

	// 1. Construct a defect-screened 96-node Tornado Code graph
	//    (48 data + 48 check nodes, the paper's RAID-10-equivalent
	//    overhead).
	g, stats, err := tornado.Generate(tornado.DefaultParams(), 2006)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("generation: %d attempts, %d defect repairs\n\n", stats.Attempts, stats.Rewires)

	// 2. Encode a payload: split into 48 data blocks, derive 48 check
	//    blocks by XOR along the cascade.
	c, err := tornado.NewCodec(g, 128) // 128-byte blocks → 6 KiB per stripe
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("archival data worth keeping. "), 1+c.Capacity()/29)[:c.Capacity()]
	blocks, err := c.Encode(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes into %d blocks of %d bytes\n", len(payload), len(blocks), c.BlockSize())

	// 3. Lose blocks: drop 8 random devices.
	rng := rand.New(rand.NewPCG(7, 7))
	lost := rng.Perm(g.Total)[:8]
	for _, v := range lost {
		blocks[v] = nil
	}
	fmt.Printf("lost blocks: %v\n", lost)

	// 4. Decode: peeling reconstruction recovers the payload from the
	//    survivors.
	decoded, err := c.Decode(blocks, len(payload))
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(decoded, payload) {
		log.Fatal("payload mismatch")
	}
	fmt.Println("decoded payload matches the original")

	// 5. Ask the analysis machinery how safe that was: what is the
	//    worst-case loss this graph tolerates?
	wc, err := tornado.WorstCase(g, tornado.WorstCaseOptions{MaxK: 4})
	if err != nil {
		log.Fatal(err)
	}
	if wc.Found {
		fmt.Printf("worst case: some %d-device loss patterns fail (%d of %d)\n",
			wc.FirstFailure, wc.PerK[len(wc.PerK)-1].FailureCount, wc.PerK[len(wc.PerK)-1].Tested)
	} else {
		fmt.Println("worst case: tolerates any 4 simultaneous device losses")
	}
}
