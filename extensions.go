package tornado

import (
	"context"
	"math/rand/v2"

	"tornado/internal/lec"
	"tornado/internal/maid"
	"tornado/internal/reliability"
	"tornado/internal/sim"
	"tornado/internal/workload"
)

// Extension types: the paper's §5.2/§6 future-work features, implemented.
type (
	// OverheadOptions tunes the reconstruction-overhead measurement.
	OverheadOptions = sim.OverheadOptions
	// OverheadResult is the minimum-retrieval-count distribution.
	OverheadResult = sim.OverheadResult
	// StripeJob is one stripe awaiting scheduled reconstruction.
	StripeJob = maid.StripeJob
	// ScheduledJob is a stripe with its planned blocks and spin-up cost.
	ScheduledJob = maid.ScheduledJob
	// WorkloadSpec configures a synthetic archival workload.
	WorkloadSpec = workload.Spec
	// WorkloadOp is one generated operation.
	WorkloadOp = workload.Op
	// WorkloadResult aggregates a workload run.
	WorkloadResult = workload.Result
	// LECOptions tunes the LEC-style candidate search.
	LECOptions = lec.Options
	// LECSearchStats reports the LEC candidate search.
	LECSearchStats = lec.SearchStats
	// LifetimeOptions tunes the discrete-event lifetime simulation.
	LifetimeOptions = sim.LifetimeOptions
	// LifetimeResult summarizes simulated times to data loss.
	LifetimeResult = sim.LifetimeResult
)

// Workload size distributions and op kinds.
const (
	SizeFixed     = workload.SizeFixed
	SizeUniform   = workload.SizeUniform
	SizeLogNormal = workload.SizeLogNormal
	OpPut         = workload.OpPut
	OpGet         = workload.OpGet
	OpFail        = workload.OpFail
	OpRepair      = workload.OpRepair
)

// MeasureOverhead measures the reconstruction overhead of g: the
// distribution of the minimum number of randomly ordered blocks needed to
// reconstruct (the Plank-style metric the paper defers to future work,
// §5.2).
func MeasureOverhead(g *Graph, opts OverheadOptions) (OverheadResult, error) {
	return sim.Overhead(g, opts)
}

// MeasureOverheadCtx is MeasureOverhead with cancellation, checked between
// sampled retrieval orders.
func MeasureOverheadCtx(ctx context.Context, g *Graph, opts OverheadOptions) (OverheadResult, error) {
	return sim.OverheadCtx(ctx, g, opts)
}

// MTTDL computes the mean time to data loss under a birth–death repair
// model (the with-repair extension of Table 5). lambda and mu are failure
// and per-repairman rebuild rates in the same time unit; failGivenK is the
// measured or analytic conditional failure profile.
func MTTDL(devices int, lambda, mu float64, repairmen int, failGivenK func(k int) float64) (float64, error) {
	return reliability.MTTDL(devices, lambda, mu, repairmen, failGivenK)
}

// AnnualLossProbability converts an MTTDL in years to a one-year loss
// probability.
func AnnualLossProbability(mttdlYears float64) float64 {
	return reliability.AnnualLossProbability(mttdlYears)
}

// SimulateLifetime runs the discrete-event ground truth of MTTDL: the
// actual graph under exponential per-device failures and a bounded repair
// crew, event by event, until the real decoder reports data loss.
func SimulateLifetime(g *Graph, opts LifetimeOptions) (LifetimeResult, error) {
	return sim.SimulateLifetime(g, opts)
}

// SimulateLifetimeCtx is SimulateLifetime with cancellation, checked
// between simulated lifetimes.
func SimulateLifetimeCtx(ctx context.Context, g *Graph, opts LifetimeOptions) (LifetimeResult, error) {
	return sim.SimulateLifetimeCtx(ctx, g, opts)
}

// AnnualLossMonteCarlo estimates the one-year loss probability by direct
// simulation (the end-to-end check of the Table 5 composition).
func AnnualLossMonteCarlo(g *Graph, afr float64, trials int64, seed uint64) (float64, error) {
	p, err := sim.AnnualLossMonteCarlo(g, afr, trials, seed, 0)
	if err != nil {
		return 0, err
	}
	return p.Estimate(), nil
}

// ScheduleReconstruction orders multiple stripe retrievals on a
// power-budgeted MAID shelf to minimize spin-ups (§6's stateful
// multi-stripe environment). It returns the schedule and total spin-up
// estimate.
func ScheduleReconstruction(g *Graph, jobs []StripeJob, initialHot []int, budget int) ([]ScheduledJob, int, error) {
	return maid.Schedule(g, jobs, initialHot, budget)
}

// ScheduleArrivalOrder is the unoptimized baseline for
// ScheduleReconstruction.
func ScheduleArrivalOrder(g *Graph, jobs []StripeJob, initialHot []int, budget int) ([]ScheduledJob, int, error) {
	return maid.ScheduleArrivalOrder(g, jobs, initialHot, budget)
}

// RunWorkload executes a synthetic archival workload against a store,
// verifying every retrieved payload.
func RunWorkload(store *Archive, devices DeviceArray, spec WorkloadSpec) (WorkloadResult, error) {
	return workload.Run(store, devices, spec)
}

// GenerateLEC draws and scores LEC-style single-level candidates and
// returns the best — the alternative family the paper marks as future
// work (§2.1).
func GenerateLEC(data, checks int, opts LECOptions, seed uint64) (*Graph, LECSearchStats, error) {
	return lec.Generate(data, checks, opts, rand.New(rand.NewPCG(seed, 3)))
}
