package tornado

import (
	"net/http"

	"tornado/internal/obs"
	"tornado/internal/steward"
)

// Federated stewarding types (paper §5.3 over real HTTP).
type (
	// SiteServer serves one archive site's object/block/health API, plus
	// /metrics (JSON request metrics) and /healthz (liveness).
	SiteServer = steward.Server
	// SiteClient is the typed client for one site: context-first methods,
	// per-request deadlines, and bounded retry with jittered backoff.
	SiteClient = steward.Client
	// SiteClientOptions tunes a SiteClient's timeout/retry/metrics.
	SiteClientOptions = steward.ClientOptions
	// Replicator stewards objects across sites with block exchange,
	// per-site health tracking, and graceful degradation around down
	// sites.
	Replicator = steward.Replicator
	// SiteStatus is the replicator's health view of one site.
	SiteStatus = steward.SiteStatus
	// StewardReport summarizes one Replicator.StewardPass.
	StewardReport = steward.StewardReport
	// Metrics is a named collection of counters, gauges, and latency
	// histograms (see internal/obs); Metrics.Handler serves it as JSON.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time export of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
)

// ErrSiteUnavailable marks transport failures and persistent 5xx answers:
// the site is down or unreachable, as opposed to a definitive reply about
// an object. Replicators use it to mark sites unhealthy.
var ErrSiteUnavailable = steward.ErrUnavailable

// NewSiteServer exposes an archive over HTTP (implements http.Handler).
func NewSiteServer(store *Archive) *SiteServer { return steward.NewServer(store) }

// NewSiteClient connects to a site at baseURL; httpClient may be nil.
func NewSiteClient(baseURL string, httpClient *http.Client) *SiteClient {
	return steward.NewClient(baseURL, httpClient)
}

// NewSiteClientWithOptions connects to a site with explicit timeout,
// retry, and metrics configuration.
func NewSiteClientWithOptions(baseURL string, opts SiteClientOptions) *SiteClient {
	return steward.NewClientWithOptions(baseURL, opts)
}

// NewReplicator federates two or more sites; their striping must agree
// while their graphs should differ (complementary graphs raise the joint
// first-failure point, Table 7).
func NewReplicator(sites ...*SiteClient) (*Replicator, error) {
	return steward.NewReplicator(sites...)
}
