package tornado

import (
	"net/http"

	"tornado/internal/steward"
)

// Federated stewarding types (paper §5.3 over real HTTP).
type (
	// SiteServer serves one archive site's object/block/health API.
	SiteServer = steward.Server
	// SiteClient is the typed client for one site.
	SiteClient = steward.Client
	// Replicator stewards objects across sites with block exchange.
	Replicator = steward.Replicator
)

// NewSiteServer exposes an archive over HTTP (implements http.Handler).
func NewSiteServer(store *Archive) *SiteServer { return steward.NewServer(store) }

// NewSiteClient connects to a site at baseURL; httpClient may be nil.
func NewSiteClient(baseURL string, httpClient *http.Client) *SiteClient {
	return steward.NewClient(baseURL, httpClient)
}

// NewReplicator federates two or more sites; their striping must agree
// while their graphs should differ (complementary graphs raise the joint
// first-failure point, Table 7).
func NewReplicator(sites ...*SiteClient) (*Replicator, error) {
	return steward.NewReplicator(sites...)
}
