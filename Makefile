GO ?= go

.PHONY: all build test race vet check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The steward federation stack and the simulation workers are the
# concurrency-heavy packages; run them under the race detector.
race:
	$(GO) test -race ./internal/steward/ ./internal/sim/ ./internal/obs/

vet:
	$(GO) vet ./...

check: vet build test race

clean:
	$(GO) clean ./...
