GO ?= go

.PHONY: all build test race vet fuzz bench check smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The steward federation stack, the simulation workers (including the
# stratified certification sampler and the screened n=10k archival-scale
# smoke), the campaign worker pool, the decode/adjust certification loops,
# the streaming graph construction, the serving layer (hedged reads,
# admission, stripe cache), the parallel stream data path, the load
# generator, the joint-decode federation search, the chaos/WAN injectors,
# and the federated store (disaster soak) are the concurrency-heavy
# packages; run them under the race detector.
race:
	$(GO) test -race ./internal/steward/ ./internal/sim/ ./internal/obs/ ./internal/campaign/ \
		./internal/decode/ ./internal/adjust/ ./internal/core/ ./internal/serve/ ./internal/archive/ \
		./internal/workload/ ./internal/federation/ ./internal/chaos/ ./internal/fedstore/

vet:
	$(GO) vet ./...

# fuzz gives the frame codec and the kernel differential batteries (peeling
# decoder, closed-set defect scan) a short randomized shake on every check;
# longer sessions: make fuzz FUZZTIME=10m
FUZZTIME ?= 3s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME) ./internal/archive/
	$(GO) test -run '^$$' -fuzz FuzzKernelMatchesReference -fuzztime $(FUZZTIME) ./internal/decode/
	$(GO) test -run '^$$' -fuzz FuzzSlicedMatchesReference -fuzztime $(FUZZTIME) ./internal/decode/
	$(GO) test -run '^$$' -fuzz FuzzDefectKernelMatchesReference -fuzztime $(FUZZTIME) ./internal/defect/

# bench measures the certification-scan and defect-scan hot paths (map/
# decoder baselines vs the incremental kernels), the serving layer (Zipf
# load generator over a chaos backend with a concurrent scrub, plus the
# stream/encode data-path loops), the repair economics (the extended
# RAID comparison plus a measured single-device-loss accounting run),
# and the archival-scale sampled certification (streamed n=10k graph,
# patterns/sec to the 1e-4 Wilson-CI target, precision trajectory,
# screening rate), writing BENCH_decode.json, BENCH_defect.json,
# BENCH_serve.json, BENCH_repair.json, BENCH_federation.json, and
# BENCH_certify.json; -check enforces the zero-allocation invariant on
# the steady-state kernel paths, the bit-exact-or-error invariant on the
# chaos load run, the backend-contract allocation budget on the stream
# stripe loop, exact repair-byte attribution, the degree-aware
# placement's cross-group read reduction, the federation gates (mirrored
# critical sets jointly recoverable, zero residue after a full site wipe,
# every cross-site repair byte attributed), and the certify gates (CI
# half-width target reached, structural screen >= 90%, no per-trial
# allocation in the sampler hot loop).
bench:
	$(GO) run ./cmd/benchreport -check

check: vet build test race fuzz

# smoke runs a small end-to-end campaign under the race detector: fresh
# run, cache-served rerun, status — the moving parts CI should exercise
# beyond unit tests. A sampled certification on a streamed n=2000 graph
# then drives the stratified sampler and its stopping rule through the
# same journaled pipeline.
SMOKE_DIR := $(shell mktemp -d /tmp/tornado-smoke.XXXXXX)
smoke:
	$(GO) run -race ./cmd/campaign run -dir $(SMOKE_DIR)/camp -cache $(SMOKE_DIR)/cache \
		-kind worstcase -seed 2006 -maxk 3 -quiet
	$(GO) run -race ./cmd/campaign run -dir $(SMOKE_DIR)/camp2 -cache $(SMOKE_DIR)/cache \
		-kind worstcase -seed 2006 -maxk 3 -quiet
	$(GO) run -race ./cmd/campaign status -dir $(SMOKE_DIR)/camp
	$(GO) run -race ./cmd/campaign run -dir $(SMOKE_DIR)/cert -cache $(SMOKE_DIR)/cache \
		-kind sampled -seed 2006 -nodes 2000 -mink 5 -maxk 5 -epsilon 1e-3 -quiet
	rm -rf $(SMOKE_DIR)

clean:
	$(GO) clean ./...
